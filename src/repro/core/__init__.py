"""Morphling core: transform-domain reuse, the 2D-systolic VPE array, and
the accelerator performance model (XPU/VPU/buffers/NoC/HBM/ISA/scheduler).
"""

from .accelerator import MORPHLING_DEFAULT, MorphlingConfig
from .area_power import AreaPowerModel, ComponentCost, TABLE_IV_PAPER
from .buffers import (
    A1_STREAM_OVERHEAD,
    BufferBudget,
    DoublePointerRotator,
    acc_stream_capacity,
    buffer_budget,
    shifter_stall_cycles,
)
from .compiler import CompilationReport, compile_and_run, compile_program
from .dataflow import Dataflow, DataflowCost, dataflow_cost, rank_dataflows
from .hbm import HbmModel, TrafficBreakdown
from .hbm_channel import (
    BSK_PATTERN,
    KSK_PATTERN,
    AccessPattern,
    HbmChannelSpec,
    effective_bandwidth_gbs,
    stack_bandwidth_gbs,
)
from .isa_encoding import (
    decode_instruction,
    decode_stream,
    encode_instruction,
    encode_stream,
    stream_size_bytes,
)
from .machine import MorphlingMachine
from .isa import DmaOp, Engine, Instruction, InstructionStream, VpuOp, XpuOp
from .noc import NocLink, NocModel
from .reuse import (
    ReuseType,
    TransformCounts,
    acc_input_reuse_factor,
    acc_output_reuse_factor,
    bsk_reuse_factor,
    reduction_vs_no_reuse,
    transforms_per_bootstrap,
    transforms_per_external_product,
)
from .scheduler import (
    HwScheduler,
    LayerDemand,
    ScheduleResult,
    SwScheduler,
    render_schedule,
    run_workload,
)
from .simulator import MorphlingSimulator, SimulationReport, simulate_bootstrap
from .sweep import SweepPoint, pareto_frontier, sweep
from .trace import PipelineTrace, StageSpan, render_timeline, trace_blind_rotation
from .vpe_array import ArrayMapping, VpeArray, map_external_product
from .vpu import VpuModel, VpuStageCycles
from .xpu import IterationBreakdown, XpuModel

__all__ = [
    "MorphlingConfig",
    "MORPHLING_DEFAULT",
    "AreaPowerModel",
    "ComponentCost",
    "TABLE_IV_PAPER",
    "A1_STREAM_OVERHEAD",
    "BufferBudget",
    "DoublePointerRotator",
    "acc_stream_capacity",
    "buffer_budget",
    "shifter_stall_cycles",
    "HbmModel",
    "Dataflow",
    "CompilationReport",
    "compile_program",
    "compile_and_run",
    "DataflowCost",
    "dataflow_cost",
    "rank_dataflows",
    "MorphlingMachine",
    "encode_instruction",
    "decode_instruction",
    "encode_stream",
    "decode_stream",
    "stream_size_bytes",
    "PipelineTrace",
    "StageSpan",
    "trace_blind_rotation",
    "render_timeline",
    "TrafficBreakdown",
    "HbmChannelSpec",
    "AccessPattern",
    "BSK_PATTERN",
    "KSK_PATTERN",
    "effective_bandwidth_gbs",
    "stack_bandwidth_gbs",
    "Engine",
    "Instruction",
    "InstructionStream",
    "XpuOp",
    "VpuOp",
    "DmaOp",
    "NocLink",
    "NocModel",
    "ReuseType",
    "TransformCounts",
    "transforms_per_external_product",
    "transforms_per_bootstrap",
    "reduction_vs_no_reuse",
    "acc_input_reuse_factor",
    "acc_output_reuse_factor",
    "bsk_reuse_factor",
    "LayerDemand",
    "SwScheduler",
    "HwScheduler",
    "ScheduleResult",
    "run_workload",
    "render_schedule",
    "MorphlingSimulator",
    "SimulationReport",
    "simulate_bootstrap",
    "SweepPoint",
    "sweep",
    "pareto_frontier",
    "ArrayMapping",
    "VpeArray",
    "map_external_product",
    "VpuModel",
    "VpuStageCycles",
    "XpuModel",
    "IterationBreakdown",
]
