"""Ablation experiment drivers for the design choices DESIGN.md calls out.

Not paper figures, but the quantitative version of the paper's design
arguments: the dataflow choice (Section IV-B), the double-pointer
rotator (Section V-C), the BSK/KSK reuse factors vs HBM pressure
(Section IV-C), and a security audit of the parameter sets.
"""

from __future__ import annotations

from ..analysis.security import classify_parameter_set
from ..core.accelerator import MorphlingConfig
from ..core.dataflow import Dataflow, dataflow_cost
from ..core.hbm import HbmModel
from ..core.simulator import simulate_bootstrap
from ..params import PARAM_SETS, get_params
from .common import ExperimentResult

__all__ = [
    "run_ablation_dataflow",
    "run_ablation_rotator",
    "run_ablation_reuse_factors",
    "run_security_table",
]


def run_ablation_dataflow(param_set: str = "I") -> ExperimentResult:
    """Buffer/bandwidth cost of the three VPE-array dataflows."""
    cfg = MorphlingConfig()
    params = get_params(param_set)
    rows = []
    for dataflow in Dataflow:
        cost = dataflow_cost(dataflow, cfg, params)
        rows.append([
            dataflow.value,
            cost.a1_bytes_per_ciphertext // 1024,
            cost.external_bytes_per_iteration // 1024,
        ])
    return ExperimentResult(
        "ablation-dataflow",
        f"VPE-array dataflow costs (set {param_set})",
        ["dataflow", "A1 KB/ciphertext", "external KB/iteration"],
        rows,
        notes=["paper: ACC-output stationary minimizes both axes (Section IV-B)"],
    )


def run_ablation_rotator() -> ExperimentResult:
    """Double-pointer rotation vs variable-delay shifter."""
    rows = []
    for pset in ("I", "II", "III", "IV"):
        p = get_params(pset)
        dp = simulate_bootstrap(MorphlingConfig(rotator="double_pointer"), p)
        sh = simulate_bootstrap(MorphlingConfig(rotator="shifter"), p)
        rows.append([
            pset, int(dp.throughput_bs), int(sh.throughput_bs),
            f"{dp.throughput_bs / sh.throughput_bs:.2f}x",
        ])
    return ExperimentResult(
        "ablation-rotator",
        "Double-pointer rotation vs variable-delay shifter",
        ["set", "double-pointer (BS/s)", "shifter (BS/s)", "advantage"],
        rows,
        notes=["paper: the shifter's variable latency causes pipeline stalls "
               "(Section V-C); the double pointer eliminates them"],
    )


def run_ablation_reuse_factors(param_set: str = "I") -> ExperimentResult:
    """BSK reuse factor vs the bootstrap rate the memory system can feed."""
    cfg = MorphlingConfig()
    params = get_params(param_set)
    hbm = HbmModel(cfg)
    compute = simulate_bootstrap(cfg, params).throughput_bs
    rows = []
    for reuse in (1, 4, 16, 64, 256):
        rate = hbm.sustainable_bootstrap_rate(params, reuse, 64)
        rows.append([
            reuse, int(rate),
            "memory-bound" if rate < compute else "compute-bound",
        ])
    return ExperimentResult(
        "ablation-reuse-factors",
        f"BSK reuse vs sustainable memory rate (set {param_set}, "
        f"compute needs {compute:,.0f} BS/s)",
        ["BSK reuse", "memory rate (BS/s)", "regime"],
        rows,
        notes=["the paper's 64x (4 rows x 4 XPUs x 4 streams) is the first "
               "factor that keeps the default build compute-bound"],
    )


def run_security_table() -> ExperimentResult:
    """First-order security audit of every parameter set."""
    rows = []
    for name in sorted(PARAM_SETS):
        est = classify_parameter_set(PARAM_SETS[name])
        rows.append([
            name,
            PARAM_SETS[name].lam,
            round(est.lwe_bits),
            round(est.glwe_bits),
            round(est.effective_bits),
            "yes" if est.meets_claim else "no (32-bit port)",
        ])
    return ExperimentResult(
        "security-table",
        "First-order security estimates per parameter set",
        ["set", "claimed", "LWE est.", "GLWE est.", "effective", "meets claim"],
        rows,
        notes=[
            "sets III/B/C claim 128-bit via a 64-bit modulus in TFHE-rs; "
            "our q=2^32 functional re-derivation estimates lower, and the "
            "estimator surfaces that documented substitution",
        ],
    )
