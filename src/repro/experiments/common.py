"""Shared result container for experiment drivers.

Every driver returns an :class:`ExperimentResult`: a table (headers +
rows) plus free-form notes, so the benchmark harness and EXPERIMENTS.md
render every table/figure the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """One regenerated table or figure."""

    experiment_id: str
    title: str
    headers: list
    rows: list
    notes: list = field(default_factory=list)

    def column(self, name: str) -> list:
        """Extract one column by header name."""
        try:
            idx = self.headers.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r}; headers: {self.headers}") from None
        return [row[idx] for row in self.rows]

    def to_text(self) -> str:
        """Render as an aligned text table (what the benches print)."""
        table = [self.headers] + [
            [self._fmt(cell) for cell in row] for row in self.rows
        ]
        widths = [max(len(str(r[c])) for r in table) for c in range(len(self.headers))]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for i, row in enumerate(table):
            lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        lines = [
            "| " + " | ".join(self.headers) + " |",
            "|" + "|".join("---" for _ in self.headers) + "|",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(self._fmt(c) for c in row) + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render as CSV (quotes cells containing commas)."""
        def q(cell):
            text = self._fmt(cell).replace(",", "")
            return text

        lines = [",".join(self.headers)]
        for row in self.rows:
            lines.append(",".join(q(c) for c in row))
        return "\n".join(lines)

    @staticmethod
    def _fmt(cell) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000:
                return f"{cell:,.0f}"
            if abs(cell) >= 1:
                return f"{cell:.2f}"
            return f"{cell:.4f}"
        if isinstance(cell, int) and abs(cell) >= 10000:
            return f"{cell:,}"
        return str(cell)
