"""Figure 1: operation / memory / CPU-time breakdown of one bootstrap.

Regenerates the three panels of the motivation figure for the 128-bit
set (N=1024, n=481, k=2, l_b=4, l_k=9): multiplication shares per stage,
working-set memory per stage, and CPU execution time per stage.
"""

from __future__ import annotations

from ..analysis import bootstrap_intensity, bootstrap_memory, count_bootstrap_operations
from ..baselines import CpuCostModel
from ..params import FIG1_PARAMS, TFHEParams
from .common import ExperimentResult

__all__ = ["run_fig1"]

PAPER_SHARES = {"ifft_fft": 0.88, "key_switch": 0.019, "other": 0.01}
PAPER_CPU_MS = {"blind_rotation": 37.7, "key_switch": 6.4}
PAPER_MEMORY_MB = {"bsk": 101.4, "ksk": 33.8}


def run_fig1(params: TFHEParams = FIG1_PARAMS) -> ExperimentResult:
    ops = count_bootstrap_operations(params)
    shares = ops.shares()
    mem = bootstrap_memory(params).megabytes()
    cpu = CpuCostModel().bootstrap_time(params)
    intensity = bootstrap_intensity(params)

    rows = [
        ["operations: I/FFT share", f"{shares['ifft_fft']:.1%}", f"{PAPER_SHARES['ifft_fft']:.0%}"],
        ["operations: pointwise share", f"{shares['pointwise']:.1%}", "~9%"],
        ["operations: key-switch share", f"{shares['key_switch']:.1%}", f"{PAPER_SHARES['key_switch']:.1%}"],
        ["operations: other share", f"{shares['other']:.2%}", "~1%"],
        ["memory: BSK (MB)", f"{mem['bsk']:.1f}", f"{PAPER_MEMORY_MB['bsk']}"],
        ["memory: KSK (MB)", f"{mem['ksk']:.1f}", f"{PAPER_MEMORY_MB['ksk']}"],
        ["CPU time: blind rotation (ms)", f"{cpu.blind_rotation_s * 1e3:.1f}", f"{PAPER_CPU_MS['blind_rotation']}"],
        ["CPU time: key switch (ms)", f"{cpu.key_switch_s * 1e3:.1f}", f"{PAPER_CPU_MS['key_switch']}"],
        ["intensity: BR (ops/byte)", f"{intensity.blind_rotation:.1f}", "compute-bound"],
        ["intensity: KS (ops/byte)", f"{intensity.key_switch:.2f}", "memory-bound"],
    ]
    return ExperimentResult(
        "fig1",
        "Bootstrap breakdown: operations, memory, CPU time",
        ["quantity", "measured", "paper"],
        rows,
        notes=[
            "BSK memory: the paper stores the transform image in expanded "
            "form (101.4 MB); our packed 32+32-bit layout gives 70.9 MB.",
            f"total multiplications per bootstrap: {ops.total:,}",
        ],
    )
