"""Table II: TFHE parameters and notation, bound to the implementation.

The paper's notation table, regenerated with each symbol's live value in
a chosen parameter set and the code location that implements it - so the
glossary doubles as a cross-reference into the library.
"""

from __future__ import annotations

from ..params import TFHEParams, get_params
from .common import ExperimentResult

__all__ = ["run_table2"]


def run_table2(params: TFHEParams = None) -> ExperimentResult:
    params = params or get_params("I")
    p = params
    rows = [
        ["N", "size of polynomial", p.N, "TFHEParams.N"],
        ["n", "dimension of LWE ciphertext", p.n, "TFHEParams.n"],
        ["k", "dimension of GLWE ciphertext", p.k, "TFHEParams.k"],
        ["q", "modulus coefficient of ciphertext", f"2^{p.q_bits}", "TFHEParams.q"],
        ["beta", "decomposition base", f"2^{p.beta_bits}", "TFHEParams.beta"],
        ["l_b", "bootstrapping key level", p.l_b, "TFHEParams.l_b"],
        ["l_k", "key-switching key level", p.l_k, "TFHEParams.l_k"],
        ["BSK_i", "bootstrapping key at iteration i",
         f"(k+1)l_b x (k+1) = {(p.k + 1) * p.l_b} x {p.k + 1} polys",
         "tfhe.keys.KeySet.bsk"],
        ["ACC_i", "accumulation ciphertext at iteration i",
         f"(k+1) = {p.k + 1} polys", "tfhe.glwe.GlweCiphertext"],
        ["KSK_(i,j)", "KSK for LWE mask i and level j",
         f"(n+1) = {p.n + 1} scalars", "tfhe.keys.KeySwitchingKey"],
    ]
    return ExperimentResult(
        "table2",
        f"TFHE parameters and notation (instantiated for set {p.name})",
        ["symbol", "description", f"value (set {p.name})", "implemented by"],
        rows,
    )
