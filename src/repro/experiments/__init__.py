"""Experiment drivers: one module per table/figure of the paper's evaluation."""

from .ablations import (
    run_ablation_dataflow,
    run_ablation_reuse_factors,
    run_ablation_rotator,
    run_security_table,
)
from .common import ExperimentResult
from .efficiency import run_efficiency_table
from .fig1 import run_fig1
from .fig2_fig6 import run_fig2, run_fig6
from .fig3 import run_fig3
from .fig7 import run_fig7a, run_fig7b
from .fig8 import run_fig8a, run_fig8b
from .runner import ALL_EXPERIMENTS, run_all
from .table1 import run_table1
from .table2 import run_table2
from .table3 import run_table3
from .table4 import run_table4
from .table5 import morphling_throughputs, run_table5
from .table6 import TABLE_VI_PAPER, run_table6

__all__ = [
    "ExperimentResult",
    "run_efficiency_table",
    "run_ablation_dataflow",
    "run_ablation_rotator",
    "run_ablation_reuse_factors",
    "run_security_table",
    "run_fig1",
    "run_fig2",
    "run_fig6",
    "run_fig3",
    "run_fig7a",
    "run_fig7b",
    "run_fig8a",
    "run_fig8b",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "morphling_throughputs",
    "TABLE_VI_PAPER",
    "ALL_EXPERIMENTS",
    "run_all",
]
