"""Run every experiment and print the regenerated tables/figures.

``python -m repro.experiments.runner`` regenerates the paper's full
evaluation section in one go.
"""

from __future__ import annotations

from .ablations import (
    run_ablation_dataflow,
    run_ablation_reuse_factors,
    run_ablation_rotator,
    run_security_table,
)
from .efficiency import run_efficiency_table
from .fig1 import run_fig1
from .fig2_fig6 import run_fig2, run_fig6
from .fig3 import run_fig3
from .fig7 import run_fig7a, run_fig7b
from .fig8 import run_fig8a, run_fig8b
from .table1 import run_table1
from .table2 import run_table2
from .table3 import run_table3
from .table4 import run_table4
from .table5 import run_table5
from .table6 import run_table6

__all__ = ["ALL_EXPERIMENTS", "run_all"]

ALL_EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "fig6": run_fig6,
    "fig7a": run_fig7a,
    "fig7b": run_fig7b,
    "fig8a": run_fig8a,
    "fig8b": run_fig8b,
    "table6": run_table6,
    "ablation-dataflow": run_ablation_dataflow,
    "ablation-rotator": run_ablation_rotator,
    "ablation-reuse-factors": run_ablation_reuse_factors,
    "security-table": run_security_table,
    "efficiency-table": run_efficiency_table,
}


def run_all() -> list:
    """Execute every experiment driver; returns the results in order."""
    return [runner() for runner in ALL_EXPERIMENTS.values()]


def main() -> None:
    for result in run_all():
        print(result.to_text())
        print()


if __name__ == "__main__":
    main()
