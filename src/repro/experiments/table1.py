"""Table I: typical ciphertext parameters per FHE scheme."""

from __future__ import annotations

from ..params import SCHEME_PROFILES
from .common import ExperimentResult

__all__ = ["run_table1"]


def run_table1() -> ExperimentResult:
    rows = []
    for name in ("TFHE", "CKKS", "BGV", "BFV"):
        profile = SCHEME_PROFILES[name]
        rows.append([
            name,
            f"{profile.log2_p_range[0]}-{profile.log2_p_range[1]}",
            f"{profile.log2_q_range[0]}-{profile.log2_q_range[1]}",
            f"{profile.log2_n_range[0]}-{profile.log2_n_range[1]}",
            "small" if profile.is_small_parameter else "large",
            "yes" if profile.needs_rns else "no",
            "yes" if profile.programmable_bootstrap else "no",
        ])
    return ExperimentResult(
        "table1",
        "Typical ciphertext parameters per FHE scheme",
        ["scheme", "log2|P|", "log2|Q|", "log2 N", "family", "needs RNS",
         "programmable bootstrap"],
        rows,
    )
