"""Table V: bootstrapping latency/throughput across platforms.

Published reference rows are reprinted verbatim; the Morphling rows come
from our simulator; the speedup factors are recomputed from the two.
"""

from __future__ import annotations

from ..baselines import TABLE_V_MORPHLING_PAPER, TABLE_V_REFERENCES, speedup_range
from ..core.accelerator import MorphlingConfig
from ..core.simulator import simulate_bootstrap
from ..params import get_params
from .common import ExperimentResult

__all__ = ["run_table5", "morphling_throughputs"]

MORPHLING_SETS = ("I", "II", "III", "IV")


def morphling_throughputs(config: MorphlingConfig = None) -> dict:
    """Simulated Morphling throughput per parameter set."""
    config = config or MorphlingConfig()
    return {
        s: simulate_bootstrap(config, get_params(s)).throughput_bs
        for s in MORPHLING_SETS
    }


def run_table5(config: MorphlingConfig = None) -> ExperimentResult:
    config = config or MorphlingConfig()
    rows = []
    for ref in TABLE_V_REFERENCES:
        rows.append([
            ref.system, ref.platform, ref.param_set,
            ref.latency_ms, int(ref.throughput_bs), "published",
        ])
    sims = {}
    for pset in MORPHLING_SETS:
        r = simulate_bootstrap(config, get_params(pset))
        sims[pset] = r
        paper = TABLE_V_MORPHLING_PAPER[pset]
        rows.append([
            "Morphling (ours)", "simulator", pset,
            round(r.bootstrap_latency_ms, 2), int(r.throughput_bs),
            f"paper: {paper.latency_ms} ms / {int(paper.throughput_bs):,} BS/s",
        ])
    throughputs = {s: r.throughput_bs for s, r in sims.items()}
    notes = []
    for system, paper_range in [
        ("Concrete", "2145-3439x"), ("NuFHE", "60-144x"), ("cuda TFHE", "55x"),
        ("XHEC", "28-37x"), ("MATCHA", "14.76x"), ("Strix", "1.98-2.0x"),
    ]:
        lo, hi = speedup_range(throughputs, system)
        shown = f"{lo:.1f}x" if abs(hi - lo) < 0.05 * hi else f"{lo:.0f}-{hi:.0f}x"
        notes.append(f"speedup over {system}: {shown} (paper {paper_range})")
    return ExperimentResult(
        "table5",
        "Bootstrapping latency and throughput across platforms",
        ["system", "platform", "set", "latency (ms)", "throughput (BS/s)", "source"],
        rows,
        notes=notes,
    )
