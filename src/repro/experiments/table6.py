"""Table VI: application execution time, Morphling vs 64-core CPU.

Each workload is lowered by the SW-scheduler and executed on the HW
scheduler timing model (set III, 128-bit); the CPU side uses the
calibrated Concrete model on all 64 cores.
"""

from __future__ import annotations

from ..apps import deepcnn_workload, vgg9_workload, xgboost_workload
from ..baselines import CpuCostModel
from ..core.accelerator import MorphlingConfig
from ..core.scheduler import run_workload
from ..params import TFHEParams, get_params
from .common import ExperimentResult

__all__ = ["run_table6", "TABLE_VI_PAPER"]

TABLE_VI_PAPER = {
    "XG-Boost": (9.59, 0.06, 144),
    "DeepCNN-20": (33.32, 0.34, 95),
    "DeepCNN-50": (74.94, 0.84, 88),
    "DeepCNN-100": (180.09, 1.72, 104),
    "VGG-9": (94.78, 0.675, 140),
}


def run_table6(params: TFHEParams = None) -> ExperimentResult:
    params = params or get_params("III")
    config = MorphlingConfig()
    cpu = CpuCostModel()
    workloads = [
        xgboost_workload(),
        deepcnn_workload(20),
        deepcnn_workload(50),
        deepcnn_workload(100),
        vgg9_workload(),
    ]
    rows = []
    for wl in workloads:
        result = run_workload(config, params, list(wl.layers))
        cpu_s = cpu.workload_seconds(params, wl.total_bootstraps, wl.total_linear_macs)
        paper_cpu, paper_morph, paper_speedup = TABLE_VI_PAPER[wl.name]
        rows.append([
            wl.name,
            wl.total_bootstraps,
            round(cpu_s, 2),
            round(result.total_seconds, 3),
            f"{cpu_s / result.total_seconds:.0f}x",
            f"{paper_cpu}s / {paper_morph}s / {paper_speedup}x",
        ])
    return ExperimentResult(
        "table6",
        f"Application execution time vs CPU (set {params.name})",
        ["application", "bootstraps", "CPU (s)", "Morphling (s)", "speedup",
         "paper (CPU/Morphling/speedup)"],
        rows,
        notes=["paper range: 88-144x speedup over the 64-core CPU"],
    )
