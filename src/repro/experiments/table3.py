"""Table III: the TFHE parameter sets used by every experiment."""

from __future__ import annotations

from ..params import PARAM_SETS
from .common import ExperimentResult

__all__ = ["run_table3"]


def run_table3() -> ExperimentResult:
    rows = []
    for name in ("I", "II", "III", "IV", "A", "B", "C"):
        p = PARAM_SETS[name]
        rows.append([
            name, p.N, p.n, p.k, p.l_b, f"{p.lam}-bit",
            f"{p.bsk_bytes / 1e6:.1f}", f"{p.ksk_bytes / 1e6:.1f}",
        ])
    return ExperimentResult(
        "table3",
        "TFHE parameter sets for experiments",
        ["set", "N", "n", "k", "l_b", "lambda", "BSK (MB)", "KSK (MB)"],
        rows,
        notes=[
            "N, n, k, l_b, lambda are the paper's Table III verbatim; "
            "decomposition bases/noise re-derived for q=2^32 (DESIGN.md)",
        ],
    )
