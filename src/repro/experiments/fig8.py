"""Figure 8: architectural sensitivity - (a) Private-A1 size, (b) XPU count.

Both sweeps use the 128-bit parameter set III, where the paper's shape is
strongest: performance degrades below the 4096 KB A1 knee and past four
XPUs the machine turns BSK-bandwidth-bound.
"""

from __future__ import annotations

from ..core.accelerator import MorphlingConfig
from ..core.simulator import simulate_bootstrap
from ..params import TFHEParams, get_params
from .common import ExperimentResult

__all__ = ["run_fig8a", "run_fig8b"]

KIB = 1024


def run_fig8a(params: TFHEParams = None, sizes_kib=None) -> ExperimentResult:
    """Throughput/latency vs Private-A1 capacity (knee at 4096 KB)."""
    params = params or get_params("III")
    sizes_kib = sizes_kib or [512, 1024, 2048, 4096, 8192, 16384]
    rows = []
    for size in sizes_kib:
        cfg = MorphlingConfig(private_a1_bytes=size * KIB)
        r = simulate_bootstrap(cfg, params)
        rows.append([
            size, r.acc_streams, int(r.throughput_bs),
            round(r.bootstrap_latency_ms, 3), r.bottleneck,
        ])
    return ExperimentResult(
        "fig8a",
        f"Impact of Private-A1 size (set {params.name})",
        ["A1 (KB)", "resident streams", "throughput (BS/s)", "latency (ms)",
         "bottleneck"],
        rows,
        notes=["paper: performance degrades below 4096 KB and stabilizes above"],
    )


def run_fig8b(params: TFHEParams = None, xpu_counts=None) -> ExperimentResult:
    """Throughput vs number of XPUs (linear to 4, bandwidth-bound past)."""
    params = params or get_params("III")
    xpu_counts = xpu_counts or [1, 2, 3, 4, 5, 6, 8]
    rows = []
    for n in xpu_counts:
        cfg = MorphlingConfig(num_xpus=n)
        r = simulate_bootstrap(cfg, params)
        rows.append([
            n, int(r.throughput_bs), int(r.throughput_bs / n),
            r.acc_streams, r.bottleneck,
        ])
    return ExperimentResult(
        "fig8b",
        f"Impact of XPU count (set {params.name}, A1 fixed at 4 MB)",
        ["XPUs", "throughput (BS/s)", "per-XPU (BS/s)", "streams", "bottleneck"],
        rows,
        notes=[
            "paper: linear scaling to 4 XPUs, degradation beyond (external "
            "bandwidth limited); ours: the 5th XPU collapses A1 residency "
            "and the machine goes BSK-bandwidth-bound",
        ],
    )
