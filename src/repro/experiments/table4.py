"""Table IV: area and power breakdown of the Morphling configuration."""

from __future__ import annotations

from ..core.accelerator import MorphlingConfig
from ..core.area_power import TABLE_IV_PAPER, AreaPowerModel
from .common import ExperimentResult

__all__ = ["run_table4"]


def run_table4(config: MorphlingConfig = None) -> ExperimentResult:
    config = config or MorphlingConfig()
    model = AreaPowerModel(config)
    rows = []
    for name, cost in model.breakdown().items():
        rows.append([name, round(cost.area_mm2, 2), round(cost.power_w, 2)])
    total = model.total()
    rows.append(["Total", round(total.area_mm2, 2), round(total.power_w, 2)])
    paper_total = TABLE_IV_PAPER["total"]
    return ExperimentResult(
        "table4",
        "Area and power breakdown (TSMC 28 nm, 1.2 GHz)",
        ["component", "area (mm^2)", "power (W)"],
        rows,
        notes=[
            f"paper total: {paper_total.area_mm2} mm^2 / {paper_total.power_w} W",
        ],
    )
