"""Figures 2 and 6: the paper's two illustrative diagrams, as data.

Figure 2 shows where transforms sit on a small VPE array for the three
reuse classes; Figure 6 shows the SW/HW co-scheduler filling the engines
with dependent instruction groups.  Both are illustrations in the paper;
here they regenerate as structured tables (plus an ASCII Gantt chart for
Fig. 6), derived from the same models everything else uses.
"""

from __future__ import annotations

from ..core.accelerator import MorphlingConfig
from ..core.reuse import ReuseType, transforms_per_external_product
from ..core.scheduler import HwScheduler, LayerDemand, SwScheduler, render_schedule
from ..params import get_params
from .common import ExperimentResult

__all__ = ["run_fig2", "run_fig6"]


def run_fig2(k: int = 2, l_b: int = 1, array: int = 3) -> ExperimentResult:
    """Fig. 2: transform placement on a (k+1)-column wave of a small array.

    One wave computes (k+1) output columns for ``array`` concurrent
    ciphertext rows; the table counts the F / F^-1 units each reuse class
    instantiates for that wave and per whole array.
    """
    rows = []
    vpes = array * (k + 1)
    for reuse in ReuseType:
        c = transforms_per_external_product(k, l_b, reuse)
        per_wave_fwd = array * c.forward
        per_wave_inv = array * c.inverse
        rows.append([
            reuse.value,
            "per VPE" if reuse is ReuseType.NO_REUSE else
            ("per row (input shared)" if reuse is ReuseType.INPUT_REUSE
             else "per row, accumulated (input+output shared)"),
            per_wave_fwd,
            per_wave_inv,
            f"{(per_wave_fwd + per_wave_inv) / vpes:.1f}",
        ])
    return ExperimentResult(
        "fig2",
        f"Transform placement on a {array}x{k + 1} VPE wave (k={k}, l_b={l_b})",
        ["reuse type", "transform placement", "forward F", "inverse F^-1",
         "transforms per VPE"],
        rows,
        notes=["the paper's Fig. 2 draws these placements for a 3x3 array; "
               "input+output reuse hoists F to the row inputs and F^-1 to "
               "the row outputs"],
    )


def run_fig6(groups: int = 4) -> ExperimentResult:
    """Fig. 6: the co-scheduler filling engines with dependent groups."""
    config = MorphlingConfig()
    params = get_params("I")
    sw = SwScheduler(config, params)
    stream = sw.schedule([LayerDemand("batch", sw.group_size * groups)])
    result = HwScheduler(config, params).execute(stream, record_spans=True)
    rows = []
    for engine, op, group, start, end in result.spans:
        if end - start < 1e-9:
            continue
        rows.append([
            engine, op, group,
            round(start * 1e3, 3), round(end * 1e3, 3),
        ])
    gantt = render_schedule(result)
    return ExperimentResult(
        "fig6",
        f"SW-HW co-scheduled execution of {groups} groups (set I)",
        ["engine", "operation", "group", "start (ms)", "end (ms)"],
        rows,
        notes=["ASCII Gantt (digits = group ids):"] + gantt.split("\n"),
    )
