"""Figure 3: domain-transform reduction per reuse type on a 4x4 VPE array.

Sweeps (k, l_b) from (1,1) to (3,3) plus the paper's named sets and
reports per-bootstrap transform counts for the three reuse classes and
the reductions relative to No-Reuse.
"""

from __future__ import annotations

from ..core.reuse import ReuseType, reduction_vs_no_reuse, transforms_per_bootstrap
from ..params import PARAM_SETS
from .common import ExperimentResult

__all__ = ["run_fig3"]


def run_fig3() -> ExperimentResult:
    rows = []
    sweep = [
        PARAM_SETS["A"].with_overrides(name="(k,lb)=(1,1) [set A]"),
        PARAM_SETS["B"].with_overrides(name="(k,lb)=(2,2) [set B]"),
        PARAM_SETS["C"].with_overrides(name="(k,lb)=(3,3) [set C]"),
        PARAM_SETS["I"].with_overrides(name="(k,lb)=(1,2) [set I]"),
        PARAM_SETS["II"].with_overrides(name="(k,lb)=(1,3) [set II]"),
    ]
    for params in sweep:
        no = transforms_per_bootstrap(params, ReuseType.NO_REUSE).total
        inp = transforms_per_bootstrap(params, ReuseType.INPUT_REUSE).total
        both = transforms_per_bootstrap(params, ReuseType.INPUT_OUTPUT_REUSE).total
        rows.append([
            params.name,
            no,
            inp,
            both,
            f"{reduction_vs_no_reuse(params.k, params.l_b, ReuseType.INPUT_REUSE):.1%}",
            f"{reduction_vs_no_reuse(params.k, params.l_b, ReuseType.INPUT_OUTPUT_REUSE):.1%}",
        ])
    return ExperimentResult(
        "fig3",
        "Domain-transform operations per bootstrap by reuse type",
        ["parameters", "no-reuse", "input-reuse", "in+out-reuse",
         "input reduction", "in+out reduction"],
        rows,
        notes=[
            "paper: up to 46,752 transforms with no reuse (set C), 25-37.5% "
            "reduction from input reuse, up to 83.3% from input+output reuse",
        ],
    )
