"""Derived efficiency comparison: energy and area efficiency vs the ASICs.

The paper compares raw latency/throughput/area/power (Table V); this
driver derives the two ratios architects actually trade on - energy per
bootstrap and throughput per mm^2 - for Morphling (simulated) against the
published MATCHA and Strix numbers at parameter set I.
"""

from __future__ import annotations

from ..baselines.reference import references_for
from ..core.accelerator import MorphlingConfig
from ..core.area_power import AreaPowerModel
from ..core.simulator import simulate_bootstrap
from ..params import get_params
from .common import ExperimentResult

__all__ = ["run_efficiency_table"]


def run_efficiency_table() -> ExperimentResult:
    rows = []
    for system in ("MATCHA", "Strix"):
        ref = next(r for r in references_for(system) if r.param_set == "I")
        rows.append([
            ref.system, ref.platform,
            round(ref.power_w / ref.throughput_bs * 1e3, 3),
            int(ref.throughput_bs / ref.area_mm2),
            "published",
        ])
    config = MorphlingConfig()
    model = AreaPowerModel(config)
    sim = simulate_bootstrap(config, get_params("I"))
    rows.append([
        "Morphling (ours)", "simulator",
        round(model.energy_per_bootstrap_mj(sim.throughput_bs), 3),
        int(model.throughput_per_mm2(sim.throughput_bs)),
        "simulated",
    ])
    return ExperimentResult(
        "efficiency-table",
        "Energy and area efficiency at parameter set I",
        ["system", "platform", "mJ/bootstrap", "BS/s per mm^2", "source"],
        rows,
        notes=[
            "derived from Table V + Table IV: Morphling's transform-domain "
            "reuse buys both the lowest energy per bootstrap and the highest "
            "throughput density",
        ],
    )
