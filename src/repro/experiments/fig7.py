"""Figure 7: (a) latency breakdown across components, (b) transform-domain
reuse impact on throughput under equal resources.
"""

from __future__ import annotations

from ..baselines import equal_resource_variants
from ..core.accelerator import MorphlingConfig
from ..core.simulator import simulate_bootstrap
from ..params import get_params
from .common import ExperimentResult

__all__ = ["run_fig7a", "run_fig7b"]


def run_fig7a(config: MorphlingConfig = None) -> ExperimentResult:
    """Per-component share of bootstrap busy time (paper: XPU 88-93 %)."""
    config = config or MorphlingConfig()
    rows = []
    for pset in ("I", "II", "III", "IV"):
        r = simulate_bootstrap(config, get_params(pset))
        fr = r.latency_fractions()
        rows.append([
            pset,
            f"{fr['xpu_blind_rotation']:.1%}",
            f"{fr['vpu_modulus_switch']:.2%}",
            f"{fr['vpu_sample_extract']:.2%}",
            f"{fr['vpu_key_switch']:.1%}",
        ])
    return ExperimentResult(
        "fig7a",
        "Latency breakdown across components",
        ["set", "XPU (blind rotation)", "VPU: MS", "VPU: SE", "VPU: KS"],
        rows,
        notes=["paper: XPU dominates with 88-93% of the total latency"],
    )


def run_fig7b() -> ExperimentResult:
    """Equal-resource reuse ladder throughput (paper sets A, B, C).

    Speedups are measured on the XPU compute pipeline (all variants use
    identical memory systems), with the No-Reuse variant as 1.0x -
    matching the paper's equal-compute-resources setup.
    """
    paper = {
        "A": {"input-reuse": "1.3-1.6x", "input+output-reuse": "2.0x"},
        "B": {"input-reuse": "1.3-1.6x", "input+output-reuse": "2.9x"},
        "C": {"input-reuse": "1.3-1.6x", "input+output-reuse": "3.9x"},
    }
    rows = []
    for pset in ("A", "B", "C"):
        p = get_params(pset)
        base = None
        for name, cfg in equal_resource_variants().items():
            r = simulate_bootstrap(cfg, p)
            thr = r.group_size / r.xpu_busy_s
            if base is None:
                base = thr
            expected = paper[pset].get(name, "-")
            rows.append([pset, name, int(thr), f"{thr / base:.2f}x", expected])
    return ExperimentResult(
        "fig7b",
        "Throughput and speed-up per transform-domain reuse type",
        ["set", "architecture", "throughput (BS/s)", "speedup", "paper"],
        rows,
        notes=[
            "paper: merge-split FFT adds 1.2-1.3x; our pipeline model credits "
            "it ~2x because the supply stages are sized to the MS-FFT rate "
            "(EXPERIMENTS.md discusses the deviation)",
            "combined techniques: paper 2.6-5.3x, ours 4.0-7.9x",
        ],
    )
