"""Morphling (HPCA 2024) reproduction.

A TFHE scheme substrate plus a functional/performance model of the
Morphling accelerator: 2D-systolic VPE arrays with transform-domain reuse,
merge-split pipelined FFTs, double-pointer rotation, specialized buffers,
an HBM channel model, and the SW/HW co-scheduler - with baselines,
applications and experiment drivers regenerating every table and figure of
the paper's evaluation.

Quickstart::

    from repro import TfheContext, get_params

    ctx = TfheContext.create(get_params("test"))
    ct = ctx.encrypt(3)
    out = ctx.bootstrap(ct)
    assert ctx.decrypt(out) == 3
"""

from .params import (
    FIG1_PARAMS,
    PARAM_SETS,
    SCHEME_PROFILES,
    TEST_PARAMS,
    TEST_PARAMS_K2,
    SchemeProfile,
    TFHEParams,
    get_params,
)
from .tfhe import TfheContext

__version__ = "1.0.0"

__all__ = [
    "TFHEParams",
    "SchemeProfile",
    "PARAM_SETS",
    "SCHEME_PROFILES",
    "FIG1_PARAMS",
    "TEST_PARAMS",
    "TEST_PARAMS_K2",
    "get_params",
    "TfheContext",
    "__version__",
]
