"""TFHE parameter sets used throughout the Morphling reproduction.

The paper (Table III) evaluates seven TFHE parameter sets.  Sets I-IV use
``k = 1`` and are used for the cross-platform comparison in Table V; sets
A-C increase ``k`` and exercise the transform-domain reuse ablation in
Figure 7-b.  Figure 1's operation breakdown uses a separate 128-bit set
(``N=1024, n=481, k=2, l_b=4, l_k=9``).

All parameters follow the paper's notation (its Table II):

===========  =================================================
``N``        polynomial size (degree of the negacyclic ring)
``n``        LWE dimension
``k``        GLWE dimension
``q``        ciphertext modulus (always ``2**32`` here)
``beta``     gadget decomposition base
``l_b``      bootstrapping-key decomposition level
``l_k``      key-switching-key decomposition level
``lam``      claimed security level in bits
===========  =================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "TFHEParams",
    "SchemeProfile",
    "PARAM_SETS",
    "SCHEME_PROFILES",
    "FIG1_PARAMS",
    "TEST_PARAMS",
    "TEST_PARAMS_K2",
    "get_params",
]


@dataclass(frozen=True)
class TFHEParams:
    """A complete TFHE parameter set.

    Beyond the paper's Table III columns (``N``, ``n``, ``k``, ``l_b``,
    ``lam``) the set carries everything the scheme substrate needs: the
    ciphertext modulus, decomposition bases for the bootstrapping and
    key-switching keys, and the noise standard deviations used at
    encryption time (expressed as fractions of the torus).
    """

    name: str
    N: int
    n: int
    k: int
    l_b: int
    lam: int
    q_bits: int = 32
    beta_bits: int = 8
    l_k: int = 4
    beta_ks_bits: int = 4
    lwe_noise_log2: float = -15.0
    glwe_noise_log2: float = -25.0

    def __post_init__(self) -> None:
        if self.N <= 0 or self.N & (self.N - 1):
            raise ValueError(f"N must be a power of two, got {self.N}")
        if self.n <= 0:
            raise ValueError(f"n must be positive, got {self.n}")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.l_b < 1 or self.l_k < 1:
            raise ValueError("decomposition levels must be >= 1")
        if self.beta_bits * self.l_b > self.q_bits:
            raise ValueError(
                "bootstrap decomposition exceeds modulus: "
                f"beta_bits * l_b = {self.beta_bits * self.l_b} > {self.q_bits}"
            )
        if self.beta_ks_bits * self.l_k > self.q_bits:
            raise ValueError(
                "key-switch decomposition exceeds modulus: "
                f"beta_ks_bits * l_k = {self.beta_ks_bits * self.l_k} > {self.q_bits}"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def q(self) -> int:
        """Ciphertext modulus (power of two)."""
        return 1 << self.q_bits

    @property
    def beta(self) -> int:
        """Gadget decomposition base for the bootstrapping key."""
        return 1 << self.beta_bits

    @property
    def beta_ks(self) -> int:
        """Gadget decomposition base for the key-switching key."""
        return 1 << self.beta_ks_bits

    @property
    def glwe_lwe_dimension(self) -> int:
        """Dimension of the LWE ciphertext extracted from a GLWE (``k*N``)."""
        return self.k * self.N

    @property
    def polynomials_per_ggsw(self) -> int:
        """Number of ring polynomials in one GGSW ciphertext."""
        return (self.k + 1) * self.l_b * (self.k + 1)

    @property
    def polymults_per_external_product(self) -> int:
        """Polynomial multiplications per external product: (k+1)^2 * l_b."""
        return (self.k + 1) * (self.k + 1) * self.l_b

    @property
    def polymults_per_bootstrap(self) -> int:
        """Polynomial multiplications in one blind rotation (n externals)."""
        return self.n * self.polymults_per_external_product

    # ------------------------------------------------------------------
    # Memory footprints (bytes), matching the Fig. 1 accounting
    # ------------------------------------------------------------------
    @property
    def coeff_bytes(self) -> int:
        """Bytes per polynomial coefficient in the standard domain."""
        return self.q_bits // 8

    @property
    def bsk_bytes(self) -> int:
        """Bootstrapping key size: ``n`` GGSW ciphertexts."""
        return self.n * self.polynomials_per_ggsw * self.N * self.coeff_bytes

    @property
    def bsk_transform_bytes(self) -> int:
        """BSK pre-computed in the transform domain.

        A length-``N`` real polynomial becomes ``N/2`` complex points;
        Morphling packs each complex point as 32-bit real + 32-bit
        imaginary, so the transform-domain image is byte-for-byte the
        same size as the coefficient image.
        """
        return self.bsk_bytes

    @property
    def ksk_bytes(self) -> int:
        """Key-switching key size: ``k*N*l_k`` LWE ciphertexts."""
        return self.k * self.N * self.l_k * (self.n + 1) * self.coeff_bytes

    @property
    def lwe_bytes(self) -> int:
        """One LWE ciphertext under the small key."""
        return (self.n + 1) * self.coeff_bytes

    @property
    def glwe_bytes(self) -> int:
        """One GLWE ciphertext (the ACC working set of one bootstrap)."""
        return (self.k + 1) * self.N * self.coeff_bytes

    def with_overrides(self, **kwargs) -> "TFHEParams":
        """Return a copy with selected fields replaced (for sweeps)."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: N={self.N} n={self.n} k={self.k} "
            f"l_b={self.l_b} lambda={self.lam}-bit"
        )


def _bootstrap_level_bases(l_b: int) -> int:
    """Pick a decomposition base width that fits ``l_b`` levels in 32 bits.

    The paper keeps ``q = 2**32`` and chooses ``beta`` per set; Concrete's
    published sets use wider bases for fewer levels.  We mirror that: the
    product ``beta_bits * l_b`` stays near (but below) the modulus width
    so recomposition covers most significant bits.
    """
    return max(1, min(23, 32 // (l_b + 1)))


# ---------------------------------------------------------------------------
# Table III — the seven parameter sets evaluated by the paper
# ---------------------------------------------------------------------------
# The paper's (N, n, k, l_b, lambda) are kept verbatim - they drive the
# performance model.  TFHE-rs realizes the 128-bit N=2048/4096 sets over a
# 64-bit modulus; our functional substrate is 32-bit, so the decomposition
# base and noise level of each set are re-derived for q = 2**32 such that
# the noise budget closes with the same l_b (documented in DESIGN.md).
PARAM_SETS: dict = {
    "I": TFHEParams("I", N=1024, n=500, k=1, l_b=2, lam=80,
                    beta_bits=10, l_k=4, beta_ks_bits=3, glwe_noise_log2=-29.0),
    "II": TFHEParams("II", N=1024, n=630, k=1, l_b=3, lam=110,
                     beta_bits=7, l_k=4, beta_ks_bits=3, glwe_noise_log2=-29.0),
    "III": TFHEParams("III", N=2048, n=592, k=1, l_b=3, lam=128,
                      beta_bits=8, l_k=4, beta_ks_bits=3, glwe_noise_log2=-30.0),
    "IV": TFHEParams("IV", N=2048, n=742, k=1, l_b=1, lam=128,
                     beta_bits=16, l_k=5, beta_ks_bits=3, glwe_noise_log2=-31.5),
    "A": TFHEParams("A", N=4096, n=769, k=1, l_b=1, lam=128,
                    beta_bits=16, l_k=5, beta_ks_bits=3, glwe_noise_log2=-31.5),
    "B": TFHEParams("B", N=1024, n=497, k=2, l_b=2, lam=128,
                    beta_bits=10, l_k=4, beta_ks_bits=3, glwe_noise_log2=-29.0),
    "C": TFHEParams("C", N=512, n=487, k=3, l_b=3, lam=128,
                    beta_bits=7, l_k=4, beta_ks_bits=3, glwe_noise_log2=-29.0),
}

#: The 128-bit set used for Figure 1's operation breakdown.
FIG1_PARAMS = TFHEParams("fig1", N=1024, n=481, k=2, l_b=4, lam=128,
                         beta_bits=6, l_k=9, beta_ks_bits=3)

#: A small parameter set for fast functional tests.  Not secure - the LWE
#: dimension is tiny so encrypt/bootstrap/decrypt round-trips run in
#: milliseconds while exercising every code path of the real scheme.
TEST_PARAMS = TFHEParams("test", N=256, n=16, k=1, l_b=3, lam=0,
                         beta_bits=7, l_k=3, beta_ks_bits=6,
                         lwe_noise_log2=-22.0, glwe_noise_log2=-30.0)

#: A k=2 functional test set: exercises the multi-component GLWE paths
#: (three-column VPE waves, wider decomposition vectors) where the
#: paper's transform-domain reuse pays most.  Also insecure by design.
TEST_PARAMS_K2 = TFHEParams("test-k2", N=128, n=12, k=2, l_b=2, lam=0,
                            beta_bits=9, l_k=3, beta_ks_bits=6,
                            lwe_noise_log2=-22.0, glwe_noise_log2=-30.0)


def get_params(name: str) -> TFHEParams:
    """Look up a parameter set by name (Table III name, ``fig1`` or ``test``)."""
    if name == "fig1":
        return FIG1_PARAMS
    if name == "test":
        return TEST_PARAMS
    if name == "test-k2":
        return TEST_PARAMS_K2
    try:
        return PARAM_SETS[name]
    except KeyError:
        known = ", ".join(list(PARAM_SETS) + ["fig1", "test", "test-k2"])
        raise KeyError(f"unknown parameter set {name!r}; known sets: {known}") from None


# ---------------------------------------------------------------------------
# Table I — typical ciphertext parameters per FHE scheme
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SchemeProfile:
    """Typical ciphertext parameter ranges of an FHE scheme (paper Table I)."""

    scheme: str
    log2_p_range: tuple
    log2_q_range: tuple
    log2_n_range: tuple
    needs_rns: bool
    programmable_bootstrap: bool

    @property
    def is_small_parameter(self) -> bool:
        """True for the small-parameter family (TFHE)."""
        return self.log2_q_range[1] <= 64


SCHEME_PROFILES: dict = {
    "TFHE": SchemeProfile("TFHE", (1, 8), (32, 64), (8, 12),
                          needs_rns=False, programmable_bootstrap=True),
    "CKKS": SchemeProfile("CKKS", (1, 32), (64, 1024), (10, 16),
                          needs_rns=True, programmable_bootstrap=False),
    "BGV": SchemeProfile("BGV", (1, 32), (64, 1024), (10, 16),
                         needs_rns=True, programmable_bootstrap=False),
    "BFV": SchemeProfile("BFV", (1, 32), (64, 1024), (10, 16),
                         needs_rns=True, programmable_bootstrap=False),
}
