"""Programmable bootstrapping: MS -> BR -> SE -> KS (Algorithm 1).

The four stages map one-to-one onto Morphling's hardware:

- :func:`modulus_switch` - VPU scalar multiply + round (memory-light);
- :func:`blind_rotate` - the XPU's ``n`` sequential CMux external
  products, each a rotation -> decomposition -> transform-domain
  matrix-vector product;
- sample extraction (:func:`repro.tfhe.glwe.sample_extract`) - pure data
  regrouping on the VPU;
- :func:`key_switch` - the memory-bound KSK contraction on the VPU.

:func:`programmable_bootstrap` composes them and optionally records
per-stage operation counts through a :class:`BootstrapTrace` so the
analysis layer (Fig. 1) can account real executions rather than formulas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..observability import NOISE as _NOISE, REGISTRY as _METRICS, TRACER as _TRACER
from .decomposition import decompose
from .ggsw import cmux
from .glwe import GlweCiphertext, glwe_rotate, glwe_trivial, sample_extract
from .keys import KeySet, KeySwitchingKey
from .lwe import LweCiphertext
from .noise import (
    blind_rotation_noise_variance,
    key_switch_noise_variance,
    modulus_switch_noise_variance,
)
from .torus import modswitch, to_signed, to_torus, u32

__all__ = [
    "BootstrapTrace",
    "modulus_switch",
    "blind_rotate",
    "key_switch",
    "programmable_bootstrap",
]

_BOOTSTRAPS = _METRICS.counter(
    "tfhe_bootstraps_total", "Programmable bootstraps executed (functional path)"
)
_BR_STEPS = _METRICS.counter(
    "tfhe_blind_rotation_steps_total",
    "Blind-rotation CMux iterations executed (zero digits skipped)",
)
_EXTERNAL_PRODUCTS = _METRICS.counter(
    "tfhe_external_products_total", "GGSW external products executed, by engine"
)
_KEY_SWITCHES = _METRICS.counter(
    "tfhe_key_switches_total", "LWE key switches executed"
)


@dataclass
class BootstrapTrace:
    """Counters filled in by an instrumented bootstrap run."""

    external_products: int = 0
    forward_transforms: int = 0
    inverse_transforms: int = 0
    pointwise_mult_polys: int = 0
    rotations: int = 0
    ks_scalar_mults: int = 0
    ms_operations: int = 0

    def total_transforms(self) -> int:
        return self.forward_transforms + self.inverse_transforms


def modulus_switch(ct: LweCiphertext, N: int) -> tuple:
    """Rescale an LWE ciphertext to modulus ``2N`` (Algorithm 1, line 1).

    Returns plain integer arrays ``(a_tilde, b_tilde)`` in ``Z_{2N}``.
    """
    a_tilde = modswitch(ct.a, 2 * N)
    b_tilde = int(modswitch(np.asarray(ct.b), 2 * N)[()])
    return a_tilde, b_tilde


def blind_rotate(
    a_tilde: np.ndarray,
    b_tilde: int,
    test_poly: np.ndarray,
    keyset: KeySet,
    engine: str = "transform",
    trace: BootstrapTrace = None,
) -> GlweCiphertext:
    """Blind rotation: ACC <- X^{-b~} * TP, then ``n`` CMux iterations.

    After the loop the accumulator holds ``X^{-phase} * TP`` where
    ``phase = b~ - sum a~_i s_i`` - the noisy encoded message in ``Z_{2N}``.
    """
    params = keyset.params
    acc = glwe_trivial(test_poly, params.k)
    acc = glwe_rotate(acc, -b_tilde)
    steps = 0
    for i in range(params.n):
        t = int(a_tilde[i])
        if t == 0:
            continue
        rotated = glwe_rotate(acc, t)
        acc = cmux(keyset.bsk[i], acc, rotated, engine=engine)
        steps += 1
        if trace is not None:
            trace.external_products += 1
            trace.rotations += 1
            trace.forward_transforms += (params.k + 1) * params.l_b
            trace.inverse_transforms += params.k + 1
            trace.pointwise_mult_polys += (params.k + 1) ** 2 * params.l_b
    if steps and _METRICS.enabled:
        _BR_STEPS.inc(steps)
        _EXTERNAL_PRODUCTS.inc(steps, engine=engine)
    return acc


def key_switch(
    ct: LweCiphertext,
    ksk: KeySwitchingKey,
    trace: BootstrapTrace = None,
) -> LweCiphertext:
    """Switch an extracted LWE ciphertext back to the original key.

    ``c'' = (0, ..., b') - sum_i sum_j Decomp(a'_i)_j * KSK_(i,j)``
    (Algorithm 1, line 6), fully vectorized over the ``k*N`` input masks.
    """
    if ct.n != ksk.in_dimension:
        raise ValueError("ciphertext dimension does not match KSK input dimension")
    digits = decompose(ct.a[None, :], ksk.beta_ks_bits, ksk.l_k)[0]  # (l_k, kN)
    digits = digits.T  # (kN, l_k)
    d64 = digits.astype(np.int64)
    mask_acc = -(d64[:, :, None] * ksk.masks.astype(np.int64)).sum(axis=(0, 1))
    body_acc = np.int64(ct.b) - (d64 * ksk.bodies.astype(np.int64)).sum()
    if trace is not None:
        trace.ks_scalar_mults += int(digits.size) * (ksk.out_dimension + 1)
    _KEY_SWITCHES.inc()
    return LweCiphertext(to_torus(mask_acc), to_torus(body_acc)[()])


def _negacyclic_lookup(test_poly: np.ndarray, j: int, N: int) -> int:
    """Coefficient 0 of ``X^{-j} * TP`` over ``Z_{2N}`` (antiperiodic)."""
    j %= 2 * N
    if j < N:
        return int(test_poly[j])
    return int(u32(-int(test_poly[j - N])))


def _track_bootstrap(
    result: LweCiphertext,
    ct_in: LweCiphertext,
    test_poly: np.ndarray,
    keyset: KeySet,
    op: str,
) -> None:
    """Noise-telemetry hook: shadow the bootstrap's ideal output.

    A bootstrap is a *decision* followed by a *refresh*: the noisy phase
    picks a ``Z_{2N}`` test-polynomial bucket (where modswitch rounding
    plus the input noise can pick wrong), and the output carries only
    fresh BR+KS noise.  The shadow replays the decision on the noise-free
    expected phase, records the fresh output variance on ``result``, and
    logs the decision margin (distance to the nearest bucket whose output
    differs) as a failure point.
    """
    record = _NOISE.record_of(ct_in)
    if record is None:
        return
    params = keyset.params
    n2 = 2 * params.N
    m = int(modswitch(np.asarray(record.expected, dtype=np.uint32), n2)[()])
    expected_out = _negacyclic_lookup(test_poly, m, params.N)
    out_variance = key_switch_noise_variance(
        params, blind_rotation_noise_variance(params)
    )
    _NOISE.track(result, op, out_variance, expected_out, parents=(ct_in,))
    # Decision margin: expected phase offset within its bucket, plus the
    # distance (in buckets) to the nearest value change of the LUT.
    step = 1.0 / n2
    delta_num = int(to_signed(u32(record.expected - m * ((1 << 32) // n2))))
    delta = delta_num / float(1 << 32)
    d_up = d_down = None
    for d in range(1, n2):
        if d_up is None and _negacyclic_lookup(test_poly, m + d, params.N) != expected_out:
            d_up = d
        if d_down is None and _negacyclic_lookup(test_poly, m - d, params.N) != expected_out:
            d_down = d
        if d_up is not None and d_down is not None:
            break
    margin_up = ((d_up - 0.5) * step - delta) if d_up is not None else 0.5
    margin_down = ((d_down - 0.5) * step + delta) if d_down is not None else 0.5
    decision_variance = record.predicted_variance + modulus_switch_noise_variance(params)
    _NOISE.record_failure_point(
        "bootstrap_decision", min(margin_up, margin_down), decision_variance
    )


def programmable_bootstrap(
    ct: LweCiphertext,
    test_poly: np.ndarray,
    keyset: KeySet,
    engine: str = "transform",
    trace: BootstrapTrace = None,
) -> LweCiphertext:
    """Full programmable bootstrap of one LWE ciphertext (Algorithm 1).

    ``engine`` picks the external-product datapath: ``"transform"``
    (Morphling's reuse datapath), ``"fft"`` (per-product transforms) or
    ``"exact"`` (integer reference).
    """
    params = keyset.params
    with _TRACER.span("programmable_bootstrap", category="tfhe",
                      engine=engine, n=params.n, N=params.N):
        a_tilde, b_tilde = modulus_switch(ct, params.N)
        if trace is not None:
            trace.ms_operations += params.n + 1
        acc = blind_rotate(
            a_tilde, b_tilde, test_poly, keyset, engine=engine, trace=trace
        )
        extracted = sample_extract(acc, 0)
        result = key_switch(extracted, keyset.ksk, trace=trace)
    _BOOTSTRAPS.inc()
    if _NOISE.enabled:
        _track_bootstrap(result, ct, test_poly, keyset, "programmable_bootstrap")
    return result
