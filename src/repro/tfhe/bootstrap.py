"""Programmable bootstrapping: MS -> BR -> SE -> KS (Algorithm 1).

The four stages map one-to-one onto Morphling's hardware:

- :func:`modulus_switch` - VPU scalar multiply + round (memory-light);
- :func:`blind_rotate` - the XPU's ``n`` sequential CMux external
  products, each a rotation -> decomposition -> transform-domain
  matrix-vector product;
- sample extraction (:func:`repro.tfhe.glwe.sample_extract`) - pure data
  regrouping on the VPU;
- :func:`key_switch` - the memory-bound KSK contraction on the VPU.

:func:`programmable_bootstrap` composes them and optionally records
per-stage operation counts through a :class:`BootstrapTrace` so the
analysis layer (Fig. 1) can account real executions rather than formulas.

The execution path is *batch-first*: :func:`blind_rotate_batch` runs ``B``
independent accumulators through every BSK row together - the software
analogue of the paper's 2D VPE array, where each row processes a
different bootstrap against the shared, pre-transformed BSK entry.  The
scalar entry points are batch-of-one views of the same kernel, so scalar
and batched results are bit-identical in the default double-precision
mode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..observability import (
    BUS as _BUS,
    NOISE as _NOISE,
    REGISTRY as _METRICS,
    TRACER as _TRACER,
    report_anomaly as _report_anomaly,
)
from ..transforms.backends import active_backend_name as _active_backend_name
from .decomposition import decompose
from .ggsw import cmux, external_product_spectrum_batch
from .glwe import GlweCiphertext, glwe_rotate, glwe_trivial, sample_extract, sample_extract_batch
from .keys import KeySet, KeySwitchingKey
from .lwe import LweCiphertext
from .noise import (
    blind_rotation_noise_variance,
    key_switch_noise_variance,
    modulus_switch_noise_variance,
)
from .polynomial import monomial_rotate_batch
from .torus import TORUS_DTYPE, modswitch, to_signed, to_torus, u32

__all__ = [
    "BootstrapTrace",
    "modulus_switch",
    "blind_rotate",
    "blind_rotate_batch",
    "key_switch",
    "key_switch_batch",
    "programmable_bootstrap",
    "programmable_bootstrap_batch",
]

_BOOTSTRAPS = _METRICS.counter(
    "tfhe_bootstraps_total", "Programmable bootstraps executed (functional path)"
)
_BR_STEPS = _METRICS.counter(
    "tfhe_blind_rotation_steps_total",
    "Blind-rotation CMux iterations executed (zero digits skipped)",
)
_EXTERNAL_PRODUCTS = _METRICS.counter(
    "tfhe_external_products_total", "GGSW external products executed, by engine"
)
_KEY_SWITCHES = _METRICS.counter(
    "tfhe_key_switches_total", "LWE key switches executed"
)
_BOOTSTRAP_LATENCY = _METRICS.quantile(
    "tfhe_bootstrap_latency_seconds",
    "Wall-clock request latency of the functional bootstrap path; every "
    "request in a batch waits for the whole batch",
)


@dataclass
class BootstrapTrace:
    """Counters filled in by an instrumented bootstrap run."""

    external_products: int = 0
    forward_transforms: int = 0
    inverse_transforms: int = 0
    pointwise_mult_polys: int = 0
    rotations: int = 0
    ks_scalar_mults: int = 0
    ms_operations: int = 0

    def total_transforms(self) -> int:
        return self.forward_transforms + self.inverse_transforms


def modulus_switch(ct: LweCiphertext, N: int) -> tuple:
    """Rescale an LWE ciphertext to modulus ``2N`` (Algorithm 1, line 1).

    Returns plain integer arrays ``(a_tilde, b_tilde)`` in ``Z_{2N}``.
    """
    a_tilde = modswitch(ct.a, 2 * N)
    b_tilde = int(modswitch(np.asarray(ct.b), 2 * N)[()])
    return a_tilde, b_tilde


def blind_rotate_batch(
    a_tilde: np.ndarray,
    b_tilde: np.ndarray,
    test_polys: np.ndarray,
    keyset: KeySet,
    trace: Optional[BootstrapTrace] = None,
    precision: str = "double",
) -> np.ndarray:
    """Blind-rotate ``B`` independent accumulators through one BSK pass.

    ``a_tilde`` has shape ``(B, n)`` and ``b_tilde`` shape ``(B,)`` (both
    already modulus-switched to ``Z_{2N}``); ``test_polys`` is ``(N,)``
    (shared) or ``(B, N)`` (per-sample LUTs).  Returns the ``(B, k+1, N)``
    accumulator data.

    Per BSK row ``i`` the samples whose digit ``a~_i`` is non-zero are
    gathered, rotated-and-differenced in one fused gather (no intermediate
    :class:`GlweCiphertext` copies), and pushed through the shared einsum
    external-product kernel against the eagerly transformed BSK entry -
    exactly the 2D VPE-array schedule: one BSK row amortized over all
    in-flight bootstraps.  ``precision`` picks the BSK table mode
    (``"double"`` is bit-identical to the scalar path; ``"single"`` keeps
    the MAC in complex64, see :meth:`KeySet.bsk_spectrum_table`).
    """
    params = keyset.params
    k, l_b, n_poly = params.k, params.l_b, params.N
    a_tilde = np.asarray(a_tilde, dtype=np.int64)
    batch = a_tilde.shape[0]
    table = keyset.bsk_spectrum_table(precision)
    tp = np.broadcast_to(np.asarray(test_polys, dtype=TORUS_DTYPE), (batch, n_poly))
    acc = np.zeros((batch, k + 1, n_poly), dtype=TORUS_DTYPE)
    acc[:, k, :] = monomial_rotate_batch(tp, -np.asarray(b_tilde, dtype=np.int64))
    total_steps = 0
    for i in range(params.n):
        t = a_tilde[:, i]
        active = np.nonzero(t)[0]
        steps = int(active.size)
        if steps == 0:
            continue
        sub = acc if steps == batch else acc[active]
        # Fused rotate-diff: diff = X^{a~_i} * ACC - ACC in one gather.
        diff = monomial_rotate_batch(sub, t[active, None])
        diff -= sub
        update = external_product_spectrum_batch(
            table[i], diff, params.beta_bits, l_b
        )
        if steps == batch:
            acc += update
        else:
            acc[active] = sub + update
        total_steps += steps
        if trace is not None:
            trace.external_products += steps
            trace.rotations += steps
            trace.forward_transforms += steps * (k + 1) * l_b
            trace.inverse_transforms += steps * (k + 1)
            trace.pointwise_mult_polys += steps * (k + 1) ** 2 * l_b
    if total_steps and _METRICS.enabled:
        _BR_STEPS.inc(total_steps)
        _EXTERNAL_PRODUCTS.inc(total_steps, engine="transform")
    return acc


def blind_rotate(
    a_tilde: np.ndarray,
    b_tilde: int,
    test_poly: np.ndarray,
    keyset: KeySet,
    engine: str = "transform",
    trace: Optional[BootstrapTrace] = None,
) -> GlweCiphertext:
    """Blind rotation: ACC <- X^{-b~} * TP, then ``n`` CMux iterations.

    After the loop the accumulator holds ``X^{-phase} * TP`` where
    ``phase = b~ - sum a~_i s_i`` - the noisy encoded message in ``Z_{2N}``.
    The default ``"transform"`` engine is a batch-of-one view of
    :func:`blind_rotate_batch`; the ``"fft"``/``"exact"`` reference
    engines keep the per-CMux loop.
    """
    params = keyset.params
    if engine == "transform":
        acc_batch = blind_rotate_batch(
            np.asarray(a_tilde, dtype=np.int64)[None, :],
            np.asarray([b_tilde], dtype=np.int64),
            np.asarray(test_poly, dtype=TORUS_DTYPE),
            keyset,
            trace=trace,
        )
        return GlweCiphertext(acc_batch[0])
    acc = glwe_trivial(test_poly, params.k)
    acc = glwe_rotate(acc, -b_tilde)
    steps = 0
    for i in range(params.n):
        t = int(a_tilde[i])
        if t == 0:
            continue
        rotated = glwe_rotate(acc, t)
        acc = cmux(keyset.bsk[i], acc, rotated, engine=engine)
        steps += 1
        if trace is not None:
            trace.external_products += 1
            trace.rotations += 1
            trace.forward_transforms += (params.k + 1) * params.l_b
            trace.inverse_transforms += params.k + 1
            trace.pointwise_mult_polys += (params.k + 1) ** 2 * params.l_b
    if steps and _METRICS.enabled:
        _BR_STEPS.inc(steps)
        _EXTERNAL_PRODUCTS.inc(steps, engine=engine)
    return acc


def key_switch_batch(
    a: np.ndarray,
    b: np.ndarray,
    ksk: KeySwitchingKey,
    trace: Optional[BootstrapTrace] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Switch ``B`` extracted LWE samples back to the original key.

    ``a`` has shape ``(B, kN)``, ``b`` shape ``(B,)``.  The KSK
    contraction runs as one einsum, ``out = -sum_{m,j} d[b,m,j] *
    KSK[m,j]``, which streams the uint32 KSK through the buffered
    iterator - no ``(kN, l_k, n)`` int64 intermediate is ever
    materialized (the old broadcast-multiply peaked at hundreds of MB on
    the secure sets).  Exact integer arithmetic: |digit| <= beta_ks/2 and
    kN*l_k terms of < 2^32 keep the int64 accumulator far from overflow.
    """
    a = np.asarray(a, dtype=TORUS_DTYPE)
    if a.shape[-1] != ksk.in_dimension:
        raise ValueError("ciphertext dimension does not match KSK input dimension")
    digits = decompose(a, ksk.beta_ks_bits, ksk.l_k)  # (B, l_k, kN)
    d64 = digits.transpose(0, 2, 1)  # (B, kN, l_k)
    mask_acc = -np.einsum("bml,mln->bn", d64, ksk.masks)
    body_acc = np.asarray(b).astype(np.int64) - np.einsum("bml,ml->b", d64, ksk.bodies)
    if trace is not None:
        trace.ks_scalar_mults += int(digits.size) * (ksk.out_dimension + 1)
    _KEY_SWITCHES.inc(a.shape[0])
    return to_torus(mask_acc), to_torus(body_acc)


def key_switch(
    ct: LweCiphertext,
    ksk: KeySwitchingKey,
    trace: Optional[BootstrapTrace] = None,
) -> LweCiphertext:
    """Switch an extracted LWE ciphertext back to the original key.

    ``c'' = (0, ..., b') - sum_i sum_j Decomp(a'_i)_j * KSK_(i,j)``
    (Algorithm 1, line 6), a batch-of-one view of
    :func:`key_switch_batch`.
    """
    out_a, out_b = key_switch_batch(
        ct.a[None, :], np.asarray([ct.b]), ksk, trace=trace
    )
    return LweCiphertext(out_a[0], out_b[0])


def _negacyclic_lookup(test_poly: np.ndarray, j: int, N: int) -> int:
    """Coefficient 0 of ``X^{-j} * TP`` over ``Z_{2N}`` (antiperiodic)."""
    j %= 2 * N
    if j < N:
        return int(test_poly[j])
    return int(u32(-int(test_poly[j - N])))


def _track_bootstrap(
    result: LweCiphertext,
    ct_in: LweCiphertext,
    test_poly: np.ndarray,
    keyset: KeySet,
    op: str,
) -> None:
    """Noise-telemetry hook: shadow the bootstrap's ideal output.

    A bootstrap is a *decision* followed by a *refresh*: the noisy phase
    picks a ``Z_{2N}`` test-polynomial bucket (where modswitch rounding
    plus the input noise can pick wrong), and the output carries only
    fresh BR+KS noise.  The shadow replays the decision on the noise-free
    expected phase, records the fresh output variance on ``result``, and
    logs the decision margin (distance to the nearest bucket whose output
    differs) as a failure point.
    """
    record = _NOISE.record_of(ct_in)
    if record is None:
        return
    params = keyset.params
    n2 = 2 * params.N
    m = int(modswitch(np.asarray(record.expected, dtype=np.uint32), n2)[()])
    expected_out = _negacyclic_lookup(test_poly, m, params.N)
    out_variance = key_switch_noise_variance(
        params, blind_rotation_noise_variance(params)
    )
    _NOISE.track(result, op, out_variance, expected_out, parents=(ct_in,))
    # Decision margin: expected phase offset within its bucket, plus the
    # distance (in buckets) to the nearest value change of the LUT.
    step = 1.0 / n2
    delta_num = int(to_signed(u32(record.expected - m * ((1 << 32) // n2))))
    delta = delta_num / float(1 << 32)
    d_up = d_down = None
    for d in range(1, n2):
        if d_up is None and _negacyclic_lookup(test_poly, m + d, params.N) != expected_out:
            d_up = d
        if d_down is None and _negacyclic_lookup(test_poly, m - d, params.N) != expected_out:
            d_down = d
        if d_up is not None and d_down is not None:
            break
    margin_up = ((d_up - 0.5) * step - delta) if d_up is not None else 0.5
    margin_down = ((d_down - 0.5) * step + delta) if d_down is not None else 0.5
    decision_variance = record.predicted_variance + modulus_switch_noise_variance(params)
    _NOISE.record_failure_point(
        "bootstrap_decision", min(margin_up, margin_down), decision_variance
    )


def programmable_bootstrap(
    ct: LweCiphertext,
    test_poly: np.ndarray,
    keyset: KeySet,
    engine: str = "transform",
    trace: Optional[BootstrapTrace] = None,
) -> LweCiphertext:
    """Full programmable bootstrap of one LWE ciphertext (Algorithm 1).

    ``engine`` picks the external-product datapath: ``"transform"``
    (Morphling's reuse datapath, shared with the batched pipeline),
    ``"fft"`` (per-product transforms) or ``"exact"`` (integer reference).
    """
    params = keyset.params
    t0 = time.perf_counter() if (_METRICS.enabled or _BUS.enabled) else None
    with _TRACER.span("programmable_bootstrap", category="tfhe",
                      engine=engine, n=params.n, N=params.N):
        a_tilde, b_tilde = modulus_switch(ct, params.N)
        if trace is not None:
            trace.ms_operations += params.n + 1
        acc = blind_rotate(
            a_tilde, b_tilde, test_poly, keyset, engine=engine, trace=trace
        )
        extracted = sample_extract(acc, 0)
        result = key_switch(extracted, keyset.ksk, trace=trace)
    _BOOTSTRAPS.inc()
    if t0 is not None:
        elapsed = time.perf_counter() - t0
        _BOOTSTRAP_LATENCY.observe(elapsed, batch=1, engine=engine)
        if _BUS.enabled:
            _BUS.publish("request", "tfhe/bootstrap", value=elapsed,
                         count=1, batch=1, n=params.n, N=params.N,
                         engine=engine, backend=_active_backend_name())
    if _NOISE.enabled:
        _track_bootstrap(result, ct, test_poly, keyset, "programmable_bootstrap")
    return result


def programmable_bootstrap_batch(
    cts: Sequence[LweCiphertext],
    test_polys: np.ndarray,
    keyset: KeySet,
    trace: Optional[BootstrapTrace] = None,
    precision: str = "double",
    noise_labels: Optional[Sequence[str]] = None,
) -> List[LweCiphertext]:
    """Bootstrap ``B`` independent LWE ciphertexts through one batched pass.

    ``test_polys`` is one shared ``(N,)`` LUT or a per-sample ``(B, N)``
    stack (the multi-LUT case: independent bootstraps, each with its own
    test polynomial, sharing every BSK row).  All four stages run
    vectorized over the batch; in the default ``"double"`` precision the
    outputs are bit-identical to ``B`` scalar :func:`programmable_bootstrap`
    calls.  The noise tracker shadows every sample individually
    (``noise_labels`` optionally tags sample ``r``'s records, so batched
    gates report the same per-gate provenance as scalar ones).
    """
    cts = list(cts)
    batch = len(cts)
    if batch == 0:
        return []
    params = keyset.params
    a = np.stack([ct.a for ct in cts])
    b = np.asarray([ct.b for ct in cts], dtype=TORUS_DTYPE)
    tps = np.asarray(test_polys, dtype=TORUS_DTYPE)
    t0 = time.perf_counter() if (_METRICS.enabled or _BUS.enabled) else None
    try:
        with _TRACER.span("programmable_bootstrap_batch", category="tfhe",
                          batch=batch, n=params.n, N=params.N, precision=precision):
            a_tilde = modswitch(a, 2 * params.N)
            b_tilde = modswitch(b, 2 * params.N)
            if trace is not None:
                trace.ms_operations += batch * (params.n + 1)
            acc = blind_rotate_batch(
                a_tilde, b_tilde, tps, keyset, trace=trace, precision=precision
            )
            ext_a, ext_b = sample_extract_batch(acc)
            out_a, out_b = key_switch_batch(ext_a, ext_b, keyset.ksk, trace=trace)
    except Exception as exc:
        _report_anomaly("exception", where="programmable_bootstrap_batch",
                        error=repr(exc), batch=batch)
        raise
    _BOOTSTRAPS.inc(batch)
    if t0 is not None:
        # Every request in the batch experiences the whole batch's
        # wall-clock latency, so the sample is count-weighted by `batch`.
        elapsed = time.perf_counter() - t0
        _BOOTSTRAP_LATENCY.observe(elapsed, count=batch,
                                   batch=batch, precision=precision)
        if _BUS.enabled:
            _BUS.publish("request", "tfhe/bootstrap_batch", value=elapsed,
                         count=batch, batch=batch, n=params.n, N=params.N,
                         precision=precision, backend=_active_backend_name())
    if _BUS.enabled:
        _BUS.publish("batch", "tfhe/bootstrap_batch", value=float(batch),
                     n=params.n, N=params.N, precision=precision,
                     backend=_active_backend_name())
    results = [LweCiphertext(out_a[r], out_b[r]) for r in range(batch)]
    if _NOISE.enabled:
        tp_rows = np.broadcast_to(tps, (batch, params.N))
        for r in range(batch):
            if noise_labels is not None:
                with _NOISE.labelled(noise_labels[r]):
                    _track_bootstrap(
                        results[r], cts[r], tp_rows[r], keyset,
                        "programmable_bootstrap",
                    )
            else:
                _track_bootstrap(
                    results[r], cts[r], tp_rows[r], keyset, "programmable_bootstrap"
                )
    return results
