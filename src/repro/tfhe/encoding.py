"""Message encoding for programmable bootstrapping.

TFHE encodes ``Z_p`` messages at multiples of ``q/p`` on the torus.  The
programmable bootstrap evaluates a lookup table stored in the test
polynomial; the negacyclic ring makes the evaluated function
*anti-periodic* (``f(x + p/2) = -f(x)``), so usable message space keeps a
padding bit: plain messages live in ``[0, p/2)``.

Helpers here build test polynomials from lookup tables and provide the
signed fixed-point encoding (offset binary) the NN applications use.
"""

from __future__ import annotations

import numpy as np

from ..params import TFHEParams
from .torus import encode_message

__all__ = [
    "extend_lut_antiperiodic",
    "make_test_polynomial",
    "identity_test_polynomial",
    "signed_to_message",
    "message_to_signed",
]


def extend_lut_antiperiodic(lut_half: np.ndarray, p: int) -> np.ndarray:
    """Extend a LUT defined on ``[0, p/2)`` to all of ``Z_p`` anti-periodically.

    The negacyclic ring forces ``f(m + p/2) = -f(m)``; any programmable
    bootstrap implicitly evaluates this extension, so we build it
    explicitly (values returned as signed integers mod p).
    """
    lut_half = np.asarray(lut_half, dtype=np.int64)
    if lut_half.shape != (p // 2,):
        raise ValueError(f"LUT must cover [0, p/2): expected {p // 2} entries")
    return np.concatenate((lut_half, -lut_half))


def make_test_polynomial(lut_half: np.ndarray, params: TFHEParams, p: int) -> np.ndarray:
    """Build the test polynomial (TP) encoding ``f`` for message modulus ``p``.

    Coefficient ``j`` of TP holds ``encode(f_full(round(j * p / 2N)))`` so
    that after blind rotation by the switched phase ``mu ~ m * 2N/p`` the
    constant coefficient is ``encode(f(m))`` whenever the accumulated noise
    stays below half a window (``N/p``).
    """
    n2 = 2 * params.N
    if p > n2:
        raise ValueError(f"message modulus {p} exceeds 2N = {n2}")
    full = extend_lut_antiperiodic(lut_half, p)
    j = np.arange(params.N)
    buckets = ((j * p + n2 // 2) // n2) % p
    return encode_message(full[buckets] % p, p, params.q_bits)


def identity_test_polynomial(params: TFHEParams, p: int) -> np.ndarray:
    """Test polynomial for ``f(m) = m`` (pure noise-refresh bootstrap)."""
    return make_test_polynomial(np.arange(p // 2, dtype=np.int64), params, p)


def signed_to_message(value: int, p: int) -> int:
    """Offset-binary encode a signed value in ``[-p/4, p/4)`` into ``[0, p/2)``.

    Keeps the padding bit clear so single-bootstrap LUTs (ReLU,
    comparisons) stay valid.
    """
    lo, hi = -(p // 4), p // 4
    if not lo <= value < hi:
        raise ValueError(f"signed value {value} outside [{lo}, {hi})")
    return value + p // 4


def message_to_signed(message: int, p: int) -> int:
    """Inverse of :func:`signed_to_message`."""
    if not 0 <= message < p // 2:
        raise ValueError(f"message {message} outside [0, p/2)")
    return message - p // 4
