"""Serialization of keys and ciphertexts (numpy ``.npz`` containers).

A production TFHE deployment separates the client (holds secret keys,
encrypts/decrypts) from the server (holds only evaluation keys, runs
bootstraps).  These helpers persist each artifact so the two halves can
live in different processes:

- :func:`save_keyset` / :func:`load_keyset` - the full key material
  (client side; includes secrets);
- :func:`save_evaluation_keys` / :func:`load_evaluation_keys` - only the
  BSK + KSK a server needs (returns a :class:`~repro.tfhe.keys.KeySet`
  whose secret fields are ``None``);
- :func:`save_ciphertext` / :func:`load_ciphertext` for single LWE
  samples.

Formats are plain ``.npz`` archives with a version tag; no pickling.
"""

from __future__ import annotations

import numpy as np

from ..params import TFHEParams
from .ggsw import GgswCiphertext
from .glwe import GlweSecretKey
from .keys import KeySet, KeySwitchingKey
from .lwe import LweCiphertext, LweSecretKey

__all__ = [
    "FORMAT_VERSION",
    "save_keyset",
    "load_keyset",
    "save_evaluation_keys",
    "load_evaluation_keys",
    "save_ciphertext",
    "load_ciphertext",
]

FORMAT_VERSION = 1


def _params_record(params: TFHEParams) -> np.ndarray:
    return np.array([
        params.N, params.n, params.k, params.l_b, params.lam,
        params.q_bits, params.beta_bits, params.l_k, params.beta_ks_bits,
    ], dtype=np.int64)


def _params_from_record(record: np.ndarray, name: str) -> TFHEParams:
    N, n, k, l_b, lam, q_bits, beta_bits, l_k, beta_ks_bits = (int(x) for x in record)
    return TFHEParams(name, N=N, n=n, k=k, l_b=l_b, lam=lam, q_bits=q_bits,
                      beta_bits=beta_bits, l_k=l_k, beta_ks_bits=beta_ks_bits)


def _common_arrays(keyset: KeySet) -> dict:
    bsk_rows = np.stack([g.rows for g in keyset.bsk])
    return {
        "version": np.array([FORMAT_VERSION]),
        "params": _params_record(keyset.params),
        "params_name": np.array([keyset.params.name]),
        "bsk_rows": bsk_rows,
        "ksk_masks": keyset.ksk.masks,
        "ksk_bodies": keyset.ksk.bodies,
    }


def _check_version(data) -> None:
    version = int(data["version"][0])
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {version}")


def _rebuild_keys(data, with_secrets: bool) -> KeySet:
    params = _params_from_record(data["params"], str(data["params_name"][0]))
    bsk = [
        GgswCiphertext(rows, params.beta_bits) for rows in data["bsk_rows"]
    ]
    ksk = KeySwitchingKey(data["ksk_masks"], data["ksk_bodies"], params.beta_ks_bits)
    if with_secrets:
        lwe_key = LweSecretKey(data["lwe_key"])
        glwe_key = GlweSecretKey(data["glwe_key"])
    else:
        lwe_key = None
        glwe_key = None
    return KeySet(params, lwe_key, glwe_key, bsk, ksk)


def save_keyset(path, keyset: KeySet) -> None:
    """Persist the full keyset, secrets included (client side)."""
    if keyset.lwe_key is None or keyset.glwe_key is None:
        raise ValueError("keyset has no secret keys; use save_evaluation_keys")
    arrays = _common_arrays(keyset)
    arrays["lwe_key"] = keyset.lwe_key.bits
    arrays["glwe_key"] = keyset.glwe_key.polys
    np.savez_compressed(path, **arrays)


def load_keyset(path) -> KeySet:
    """Load a full keyset saved by :func:`save_keyset`."""
    with np.load(path, allow_pickle=False) as data:
        _check_version(data)
        if "lwe_key" not in data:
            raise ValueError("archive holds evaluation keys only")
        return _rebuild_keys(data, with_secrets=True)


def save_evaluation_keys(path, keyset: KeySet) -> None:
    """Persist only what a server needs: BSK + KSK (no secrets)."""
    np.savez_compressed(path, **_common_arrays(keyset))


def load_evaluation_keys(path) -> KeySet:
    """Load server-side keys; the secret fields are ``None``."""
    with np.load(path, allow_pickle=False) as data:
        _check_version(data)
        return _rebuild_keys(data, with_secrets=False)


def save_ciphertext(path, ct: LweCiphertext) -> None:
    """Persist one LWE ciphertext."""
    np.savez_compressed(
        path, version=np.array([FORMAT_VERSION]), a=ct.a, b=np.array([ct.b])
    )


def load_ciphertext(path) -> LweCiphertext:
    """Load one LWE ciphertext."""
    with np.load(path, allow_pickle=False) as data:
        _check_version(data)
        return LweCiphertext(data["a"], data["b"][0])
