"""Multi-LUT programmable bootstrapping: many functions, one blind rotation.

Blind rotation is ~97 % of the bootstrap; sample extraction is free.  If
several functions of the *same* input are needed (e.g. an activation and
its requantization), the test polynomial can interleave ``L`` lookup
tables at sub-window granularity and a single blind rotation serves all
of them - each function's value sits at extraction offset ``j * s`` with
``s = 2N / (p * L)`` (the PBS-many-LUT technique of the TFHE literature).

The price is noise headroom: the tolerated phase error shrinks from
``1/(2p)`` to ``1/(2pL)``, i.e. the multi-LUT spends ``log2(L)`` bits of
padding.  :func:`max_luts_for_params` says how far a parameter set can
push ``L``.
"""

from __future__ import annotations

import numpy as np

from ..params import TFHEParams
from .bootstrap import blind_rotate, key_switch, modulus_switch
from .encoding import extend_lut_antiperiodic
from .glwe import sample_extract
from .keys import KeySet
from .lwe import LweCiphertext
from .noise import bootstrap_output_noise_std_log2
from .torus import encode_message

__all__ = [
    "make_multi_test_polynomial",
    "multi_lut_bootstrap",
    "max_luts_for_params",
]


def make_multi_test_polynomial(luts, params: TFHEParams, p: int) -> np.ndarray:
    """Interleave ``L`` lookup tables into one test polynomial.

    ``luts`` is a sequence of length-``p/2`` tables (or callables over
    ``[0, p/2)``).  Coefficient ``x`` holds function ``q mod L`` of
    message ``q // L`` where ``q = round(x / s)`` - so extracting
    coefficient ``j * s`` after blind rotation evaluates table ``j``.
    """
    L = len(luts)
    if L < 1:
        raise ValueError("need at least one lookup table")
    stride = (2 * params.N) // (p * L)
    if stride < 1:
        raise ValueError(
            f"{L} tables at p={p} exceed the polynomial resolution "
            f"(need p*L <= 2N = {2 * params.N})"
        )
    tables = []
    for lut in luts:
        values = np.asarray(
            [lut(x) if callable(lut) else lut[x] for x in range(p // 2)],
            dtype=np.int64,
        )
        tables.append(extend_lut_antiperiodic(values, p))
    x = np.arange(params.N)
    q = (x + stride // 2) // stride
    table_idx = q % L
    message = (q // L) % p
    coeffs = np.empty(params.N, dtype=np.int64)
    for j in range(L):
        mask = table_idx == j
        coeffs[mask] = tables[j][message[mask]] % p
    return encode_message(coeffs, p, params.q_bits)


def multi_lut_bootstrap(
    ct: LweCiphertext,
    luts,
    keyset: KeySet,
    p: int,
    engine: str = "transform",
) -> list:
    """Evaluate every table in ``luts`` with ONE blind rotation.

    Returns one LWE ciphertext per table, each key-switched back to the
    input key - ``L`` results for roughly the cost of one bootstrap.
    """
    params = keyset.params
    L = len(luts)
    test_poly = make_multi_test_polynomial(luts, params, p)
    stride = (2 * params.N) // (p * L)
    a_tilde, b_tilde = modulus_switch(ct, params.N)
    acc = blind_rotate(a_tilde, b_tilde, test_poly, keyset, engine=engine)
    outputs = []
    for j in range(L):
        extracted = sample_extract(acc, j * stride)
        outputs.append(key_switch(extracted, keyset.ksk))
    return outputs


def max_luts_for_params(params: TFHEParams, p: int, sigmas: float = 4.0) -> int:
    """Largest ``L`` the noise budget supports for this parameter set.

    The blind-rotation input noise must stay below ``1/(2pL)`` with a
    ``sigmas`` margin; we bound it by the *output* noise of a previous
    bootstrap (the steady-state regime) plus the modulus-switch error.
    """
    noise_std = 2.0 ** bootstrap_output_noise_std_log2(params)
    ms_std = ((params.n + 1) / 12.0) ** 0.5 / (2 * params.N)
    total = (noise_std ** 2 + ms_std ** 2) ** 0.5
    limit = 1.0 / (2 * p * sigmas * total)
    resolution = (2 * params.N) // p  # stride must stay >= 1
    return max(1, min(int(limit), resolution))
