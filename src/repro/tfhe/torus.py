"""Discretized-torus arithmetic.

TFHE ciphertext elements live on the torus ``T = R/Z``, implemented as the
discretized torus ``T_q = {0, 1/q, ..., (q-1)/q}`` with ``q = 2**32``
(Section II-A).  We represent torus elements by their numerators: unsigned
integers modulo ``q`` held in ``numpy.uint32`` arrays, so addition and
scalar multiplication are native wrapping integer ops.

All helpers here are dtype-strict: they accept/return ``uint32`` (or int64
intermediaries) and centralize the rounding/lifting conventions the rest of
the scheme relies on.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "TORUS_DTYPE",
    "u32",
    "Q_BITS",
    "Q",
    "to_torus",
    "from_double",
    "to_double",
    "to_signed",
    "from_signed",
    "encode_message",
    "decode_message",
    "round_to_multiple",
    "torus_add",
    "torus_sub",
    "torus_neg",
    "torus_scalar_mul",
    "torus_dot",
    "modswitch",
]

TORUS_DTYPE = np.uint32
Q_BITS = 32
Q = 1 << Q_BITS


def u32(value) -> np.uint32:
    """Reduce a python/numpy scalar into ``T_q`` without overflow warnings."""
    return TORUS_DTYPE(int(value) & 0xFFFFFFFF)


def to_torus(values, q_bits: int = Q_BITS) -> np.ndarray:
    """Reduce arbitrary integers into ``T_q`` numerators (uint32)."""
    arr = np.asarray(values)
    return (arr.astype(np.int64) & ((1 << q_bits) - 1)).astype(TORUS_DTYPE)


def from_double(x, q_bits: int = Q_BITS) -> np.ndarray:
    """Map real numbers (interpreted mod 1) onto ``T_q`` numerators."""
    arr = np.asarray(x, dtype=np.float64)
    frac = arr - np.floor(arr)
    return (np.round(frac * (1 << q_bits)).astype(np.int64) & ((1 << q_bits) - 1)).astype(TORUS_DTYPE)


def to_double(t, q_bits: int = Q_BITS) -> np.ndarray:
    """Torus numerators -> real representatives in [0, 1)."""
    return np.asarray(t, dtype=np.float64) / (1 << q_bits)


def to_signed(t) -> np.ndarray:
    """Lift torus numerators to centered representatives in [-q/2, q/2)."""
    return np.asarray(t, dtype=TORUS_DTYPE).astype(np.int32).astype(np.int64)


def from_signed(s, q_bits: int = Q_BITS) -> np.ndarray:
    """Reduce centered representatives back into ``T_q`` numerators."""
    return to_torus(s, q_bits)


def encode_message(m, p: int, q_bits: int = Q_BITS) -> np.ndarray:
    """Encode plaintext(s) ``m`` from ``Z_p`` into the torus: ``m * q/p``.

    ``p`` is the plaintext modulus (message space size); it must divide
    ``q`` evenly for exact encoding, i.e. be a power of two <= ``q``.
    """
    if p <= 0 or p & (p - 1):
        raise ValueError(f"plaintext modulus must be a power of two, got {p}")
    if p > (1 << q_bits):
        raise ValueError("plaintext modulus exceeds ciphertext modulus")
    scale = (1 << q_bits) // p
    return to_torus(np.asarray(m, dtype=np.int64) * scale, q_bits)


def decode_message(t, p: int, q_bits: int = Q_BITS) -> np.ndarray:
    """Decode noisy torus numerators back to ``Z_p`` by nearest-multiple rounding."""
    if p <= 0 or p & (p - 1):
        raise ValueError(f"plaintext modulus must be a power of two, got {p}")
    scale = (1 << q_bits) // p
    t64 = np.asarray(t, dtype=np.uint32).astype(np.int64)
    return ((t64 + scale // 2) // scale) % p


def round_to_multiple(t, scale: int) -> np.ndarray:
    """Round torus numerators to the nearest multiple of ``scale`` (mod q)."""
    t64 = np.asarray(t, dtype=np.uint32).astype(np.int64)
    return to_torus((t64 + scale // 2) // scale * scale)


def torus_add(a, b) -> np.ndarray:
    """Wrapping torus addition."""
    return (np.asarray(a, TORUS_DTYPE) + np.asarray(b, TORUS_DTYPE)).astype(TORUS_DTYPE)


def torus_sub(a, b) -> np.ndarray:
    """Wrapping torus subtraction."""
    return (np.asarray(a, TORUS_DTYPE) - np.asarray(b, TORUS_DTYPE)).astype(TORUS_DTYPE)


def torus_neg(a) -> np.ndarray:
    """Torus negation."""
    return (-np.asarray(a, TORUS_DTYPE)).astype(TORUS_DTYPE)


def torus_scalar_mul(scalar, t) -> np.ndarray:
    """Multiply torus elements by (signed or unsigned) integers, wrapping."""
    s = np.asarray(scalar, dtype=np.int64).astype(np.uint64)
    t64 = np.asarray(t, TORUS_DTYPE).astype(np.uint64)
    return ((s * t64) & np.uint64(Q - 1)).astype(TORUS_DTYPE)


def torus_dot(a, b, axis: int = -1) -> np.ndarray:
    """Wrapping dot product of torus numerators along ``axis``.

    Products and the accumulation wrap modulo ``2**64`` before the final
    reduction into ``T_q`` - the mod-q MAC-tree arithmetic every LWE
    phase computation uses.  Inputs broadcast like ``a * b``.
    """
    prod = (
        np.asarray(a, TORUS_DTYPE).astype(np.uint64)
        * np.asarray(b, TORUS_DTYPE).astype(np.uint64)
    )
    return (prod.sum(axis=axis) & np.uint64(Q - 1)).astype(TORUS_DTYPE)


def modswitch(t, new_modulus: int, q_bits: int = Q_BITS) -> np.ndarray:
    """Switch torus numerators from modulus ``q`` to ``new_modulus``.

    Computes ``round(new_modulus * t / q) mod new_modulus`` - the paper's
    MS step with ``new_modulus = 2N`` (Algorithm 1, line 1).
    """
    if new_modulus <= 0:
        raise ValueError("new modulus must be positive")
    t64 = np.asarray(t, dtype=np.uint32).astype(np.int64)
    q = 1 << q_bits
    return ((t64 * new_modulus + q // 2) // q) % new_modulus
