"""Classic CGGI gate bootstrapping (the original TFHE boolean API).

The 2016 CGGI construction encodes bits as ``+-1/8`` on the torus and
evaluates a gate as one linear combination followed by a sign-extraction
bootstrap.  Our default gate path (:mod:`repro.tfhe.ops`) uses the more
general LUT formulation; this module provides the historical encoding
for compatibility and because several comparison systems (MATCHA, the
original TFHE library, NuFHE) speak exactly this dialect:

- ``encrypt_bool`` / ``decrypt_bool``: bits at ``+-1/8``;
- gates as offset + linear combination, e.g.
  ``NAND: (0, 1/8) - c1 - c2``  then  bootstrap-to-sign;
- the sign bootstrap uses a constant test polynomial ``1/8 * X^j``.
"""

from __future__ import annotations

import numpy as np

from ..observability import NOISE as _NOISE, REGISTRY as _METRICS, TRACER as _TRACER
from .bootstrap import _track_bootstrap, blind_rotate, key_switch, modulus_switch
from .glwe import sample_extract
from .keys import KeySet
from .lwe import (
    LweCiphertext,
    lwe_add,
    lwe_add_plain,
    lwe_decrypt_phase,
    lwe_encrypt,
    lwe_neg,
)
from .torus import TORUS_DTYPE, to_torus, u32

__all__ = [
    "encrypt_bool",
    "decrypt_bool",
    "bootstrap_to_sign",
    "nand_gate",
    "and_gate",
    "or_gate",
    "xor_gate",
    "not_gate",
    "mux_gate",
]

_EIGHTH = 1 << 29  # 1/8 of the torus as a q=2^32 numerator

_GATE_BOOTSTRAPS = _METRICS.counter(
    "tfhe_gate_bootstraps_total", "CGGI sign-extraction bootstraps executed"
)
_GATES = _METRICS.counter(
    "tfhe_gates_total", "Boolean gates evaluated (CGGI dialect), by gate"
)


def encrypt_bool(bit: int, keyset: KeySet, rng: np.random.Generator) -> LweCiphertext:
    """Encrypt a bit in the CGGI ``+-1/8`` encoding."""
    if bit not in (0, 1):
        raise ValueError("gate bootstrapping encrypts bits")
    mu = _EIGHTH if bit else u32(-_EIGHTH)
    return lwe_encrypt(int(mu), keyset.lwe_key,
                       rng, noise_log2=keyset.params.lwe_noise_log2)


def decrypt_bool(ct: LweCiphertext, keyset: KeySet) -> int:
    """Decrypt a ``+-1/8`` encoded bit by its sign."""
    if _NOISE.enabled:
        record = _NOISE.record_of(ct)
        if record is not None:
            # Sign decision boundaries sit at 0 and 1/2 on the torus.
            e = record.expected / float(1 << 32)
            e = e if e < 0.5 else 1.0 - e
            _NOISE.record_failure_point(
                "sign_decode", min(e, 0.5 - e), record.predicted_variance,
                op_id=record.op_id,
            )
    phase = int(lwe_decrypt_phase(ct, keyset.lwe_key))
    return 1 if phase < (1 << 31) else 0  # positive half-torus -> 1


def _sign_test_polynomial(params) -> np.ndarray:
    """Constant test polynomial ``1/8``: blind rotation leaves +-1/8."""
    return np.full(params.N, _EIGHTH, dtype=TORUS_DTYPE)


def bootstrap_to_sign(ct: LweCiphertext, keyset: KeySet) -> LweCiphertext:
    """Refresh a ``+-1/8`` ciphertext to exactly ``+-1/8`` + fresh noise.

    Negacyclic sign extraction: with a constant ``1/8`` test polynomial,
    phases in the positive half-torus give ``+1/8`` and the negative half
    ``-1/8``.
    """
    params = keyset.params
    with _TRACER.span("bootstrap_to_sign", category="tfhe", n=params.n):
        a_tilde, b_tilde = modulus_switch(ct, params.N)
        # Gate outputs land at +-1/8 or +-3/8, a 1/8 margin from the
        # half-torus decision boundaries at 0 and 1/2 - noise budget enough.
        test_poly = _sign_test_polynomial(params)
        acc = blind_rotate(a_tilde, b_tilde, test_poly, keyset)
        extracted = sample_extract(acc, 0)
        result = key_switch(extracted, keyset.ksk)
    _GATE_BOOTSTRAPS.inc()
    if _NOISE.enabled:
        _track_bootstrap(result, ct, test_poly, keyset, "bootstrap_to_sign")
    return result


def _gate(offset_eighths: int, terms: list, keyset: KeySet,
          name: str = "gate") -> LweCiphertext:
    _GATES.inc(gate=name)
    acc = None
    for sign, ct in terms:
        signed = ct if sign > 0 else lwe_neg(ct)
        acc = signed if acc is None else lwe_add(acc, signed)
    acc = lwe_add_plain(acc, int(to_torus(offset_eighths * _EIGHTH)[()]))
    return bootstrap_to_sign(acc, keyset)


def nand_gate(a: LweCiphertext, b: LweCiphertext, keyset: KeySet) -> LweCiphertext:
    """``NAND(a, b) = sign(1/8 - a - b)``."""
    return _gate(1, [(-1, a), (-1, b)], keyset, name="nand")


def and_gate(a: LweCiphertext, b: LweCiphertext, keyset: KeySet) -> LweCiphertext:
    """``AND(a, b) = sign(-1/8 + a + b)``."""
    return _gate(-1, [(1, a), (1, b)], keyset, name="and")


def or_gate(a: LweCiphertext, b: LweCiphertext, keyset: KeySet) -> LweCiphertext:
    """``OR(a, b) = sign(1/8 + a + b)``."""
    return _gate(1, [(1, a), (1, b)], keyset, name="or")


def xor_gate(a: LweCiphertext, b: LweCiphertext, keyset: KeySet) -> LweCiphertext:
    """``XOR(a, b) = sign(1/4 + 2*(a + b))`` - the doubled-sum form.

    Equal bits push the phase to ``1/4 -+ 1/2 = -1/4`` (negative half);
    unequal bits cancel and leave ``+1/4``.
    """
    _GATES.inc(gate="xor")
    total = lwe_add(a, b)
    doubled = lwe_add(total, total)
    offset = lwe_add_plain(doubled, int(to_torus(2 * _EIGHTH)[()]))
    return bootstrap_to_sign(offset, keyset)


def not_gate(a: LweCiphertext) -> LweCiphertext:
    """NOT is negation in the ``+-1/8`` encoding (no bootstrap)."""
    _GATES.inc(gate="not")
    return lwe_neg(a)


def mux_gate(
    sel: LweCiphertext, when1: LweCiphertext, when0: LweCiphertext, keyset: KeySet
) -> LweCiphertext:
    """``MUX = OR(AND(sel, when1), AND(NOT sel, when0))`` (three bootstraps)."""
    _GATES.inc(gate="mux")
    take1 = and_gate(sel, when1, keyset)
    take0 = and_gate(not_gate(sel), when0, keyset)
    return or_gate(take1, take0, keyset)
