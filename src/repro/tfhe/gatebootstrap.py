"""Classic CGGI gate bootstrapping (the original TFHE boolean API).

The 2016 CGGI construction encodes bits as ``+-1/8`` on the torus and
evaluates a gate as one linear combination followed by a sign-extraction
bootstrap.  Our default gate path (:mod:`repro.tfhe.ops`) uses the more
general LUT formulation; this module provides the historical encoding
for compatibility and because several comparison systems (MATCHA, the
original TFHE library, NuFHE) speak exactly this dialect:

- ``encrypt_bool`` / ``decrypt_bool``: bits at ``+-1/8``;
- gates as offset + linear combination, e.g.
  ``NAND: (0, 1/8) - c1 - c2``  then  bootstrap-to-sign;
- the sign bootstrap uses a constant test polynomial ``1/8 * X^j``.
"""

from __future__ import annotations

import numpy as np

from ..observability import NOISE as _NOISE, REGISTRY as _METRICS, TRACER as _TRACER
from .bootstrap import (
    _track_bootstrap,
    blind_rotate,
    blind_rotate_batch,
    key_switch,
    key_switch_batch,
    modulus_switch,
)
from .glwe import sample_extract, sample_extract_batch
from .keys import KeySet
from .lwe import (
    LweCiphertext,
    lwe_add,
    lwe_add_plain,
    lwe_decrypt_phase,
    lwe_encrypt,
    lwe_neg,
)
from .torus import TORUS_DTYPE, modswitch, to_torus, u32

__all__ = [
    "encrypt_bool",
    "decrypt_bool",
    "bootstrap_to_sign",
    "bootstrap_to_sign_batch",
    "nand_gate",
    "and_gate",
    "or_gate",
    "xor_gate",
    "not_gate",
    "mux_gate",
]

_EIGHTH = 1 << 29  # 1/8 of the torus as a q=2^32 numerator

_GATE_BOOTSTRAPS = _METRICS.counter(
    "tfhe_gate_bootstraps_total", "CGGI sign-extraction bootstraps executed"
)
_GATES = _METRICS.counter(
    "tfhe_gates_total", "Boolean gates evaluated (CGGI dialect), by gate"
)


def encrypt_bool(bit: int, keyset: KeySet, rng: np.random.Generator) -> LweCiphertext:
    """Encrypt a bit in the CGGI ``+-1/8`` encoding."""
    if bit not in (0, 1):
        raise ValueError("gate bootstrapping encrypts bits")
    mu = _EIGHTH if bit else u32(-_EIGHTH)
    return lwe_encrypt(int(mu), keyset.lwe_key,
                       rng, noise_log2=keyset.params.lwe_noise_log2)


def decrypt_bool(ct: LweCiphertext, keyset: KeySet) -> int:
    """Decrypt a ``+-1/8`` encoded bit by its sign."""
    if _NOISE.enabled:
        record = _NOISE.record_of(ct)
        if record is not None:
            # Sign decision boundaries sit at 0 and 1/2 on the torus.
            e = record.expected / float(1 << 32)
            e = e if e < 0.5 else 1.0 - e
            _NOISE.record_failure_point(
                "sign_decode", min(e, 0.5 - e), record.predicted_variance,
                op_id=record.op_id,
            )
    phase = int(lwe_decrypt_phase(ct, keyset.lwe_key))
    return 1 if phase < (1 << 31) else 0  # positive half-torus -> 1


def _sign_test_polynomial(params) -> np.ndarray:
    """Constant test polynomial ``1/8``: blind rotation leaves +-1/8."""
    return np.full(params.N, _EIGHTH, dtype=TORUS_DTYPE)


def bootstrap_to_sign(ct: LweCiphertext, keyset: KeySet) -> LweCiphertext:
    """Refresh a ``+-1/8`` ciphertext to exactly ``+-1/8`` + fresh noise.

    Negacyclic sign extraction: with a constant ``1/8`` test polynomial,
    phases in the positive half-torus give ``+1/8`` and the negative half
    ``-1/8``.
    """
    params = keyset.params
    with _TRACER.span("bootstrap_to_sign", category="tfhe", n=params.n):
        a_tilde, b_tilde = modulus_switch(ct, params.N)
        # Gate outputs land at +-1/8 or +-3/8, a 1/8 margin from the
        # half-torus decision boundaries at 0 and 1/2 - noise budget enough.
        test_poly = _sign_test_polynomial(params)
        acc = blind_rotate(a_tilde, b_tilde, test_poly, keyset)
        extracted = sample_extract(acc, 0)
        result = key_switch(extracted, keyset.ksk)
    _GATE_BOOTSTRAPS.inc()
    if _NOISE.enabled:
        _track_bootstrap(result, ct, test_poly, keyset, "bootstrap_to_sign")
    return result


def bootstrap_to_sign_batch(cts: list, keyset: KeySet) -> list:
    """Sign-refresh several independent ``+-1/8`` ciphertexts in one pass.

    One batched MS -> BR -> SE -> KS with the shared constant test
    polynomial: every BSK row is applied to all samples together (the 2D
    VPE-array schedule), bit-identical to per-sample
    :func:`bootstrap_to_sign` calls.
    """
    cts = list(cts)
    if not cts:
        return []
    params = keyset.params
    with _TRACER.span("bootstrap_to_sign_batch", category="tfhe",
                      batch=len(cts), n=params.n):
        a = np.stack([ct.a for ct in cts])
        b = np.asarray([ct.b for ct in cts], dtype=TORUS_DTYPE)
        test_poly = _sign_test_polynomial(params)
        acc = blind_rotate_batch(
            modswitch(a, 2 * params.N), modswitch(b, 2 * params.N),
            test_poly, keyset,
        )
        ext_a, ext_b = sample_extract_batch(acc)
        out_a, out_b = key_switch_batch(ext_a, ext_b, keyset.ksk)
    _GATE_BOOTSTRAPS.inc(len(cts))
    results = [LweCiphertext(out_a[r], out_b[r]) for r in range(len(cts))]
    if _NOISE.enabled:
        for res, ct in zip(results, cts):
            _track_bootstrap(res, ct, test_poly, keyset, "bootstrap_to_sign")
    return results


def _gate_linear(offset_eighths: int, terms: list) -> LweCiphertext:
    """The linear half of a CGGI gate: signed sum plus an ``m/8`` offset."""
    acc = None
    for sign, ct in terms:
        signed = ct if sign > 0 else lwe_neg(ct)
        acc = signed if acc is None else lwe_add(acc, signed)
    return lwe_add_plain(acc, int(to_torus(offset_eighths * _EIGHTH)[()]))


def _gate(offset_eighths: int, terms: list, keyset: KeySet,
          name: str = "gate") -> LweCiphertext:
    _GATES.inc(gate=name)
    return bootstrap_to_sign(_gate_linear(offset_eighths, terms), keyset)


def nand_gate(a: LweCiphertext, b: LweCiphertext, keyset: KeySet) -> LweCiphertext:
    """``NAND(a, b) = sign(1/8 - a - b)``."""
    return _gate(1, [(-1, a), (-1, b)], keyset, name="nand")


def and_gate(a: LweCiphertext, b: LweCiphertext, keyset: KeySet) -> LweCiphertext:
    """``AND(a, b) = sign(-1/8 + a + b)``."""
    return _gate(-1, [(1, a), (1, b)], keyset, name="and")


def or_gate(a: LweCiphertext, b: LweCiphertext, keyset: KeySet) -> LweCiphertext:
    """``OR(a, b) = sign(1/8 + a + b)``."""
    return _gate(1, [(1, a), (1, b)], keyset, name="or")


def xor_gate(a: LweCiphertext, b: LweCiphertext, keyset: KeySet) -> LweCiphertext:
    """``XOR(a, b) = sign(1/4 + 2*(a + b))`` - the doubled-sum form.

    Equal bits push the phase to ``1/4 -+ 1/2 = -1/4`` (negative half);
    unequal bits cancel and leave ``+1/4``.
    """
    _GATES.inc(gate="xor")
    total = lwe_add(a, b)
    doubled = lwe_add(total, total)
    offset = lwe_add_plain(doubled, int(to_torus(2 * _EIGHTH)[()]))
    return bootstrap_to_sign(offset, keyset)


def not_gate(a: LweCiphertext) -> LweCiphertext:
    """NOT is negation in the ``+-1/8`` encoding (no bootstrap)."""
    _GATES.inc(gate="not")
    return lwe_neg(a)


def mux_gate(
    sel: LweCiphertext, when1: LweCiphertext, when0: LweCiphertext, keyset: KeySet
) -> LweCiphertext:
    """``MUX = OR(AND(sel, when1), AND(NOT sel, when0))`` (three bootstraps).

    The two AND branches are independent, so their sign bootstraps run as
    one batch of two sharing each BSK row; the OR depends on both and
    bootstraps alone.
    """
    _GATES.inc(gate="mux")
    _GATES.inc(gate="and")
    _GATES.inc(gate="and")
    lin1 = _gate_linear(-1, [(1, sel), (1, when1)])
    lin0 = _gate_linear(-1, [(1, not_gate(sel)), (1, when0)])
    take1, take0 = bootstrap_to_sign_batch([lin1, lin0], keyset)
    return or_gate(take1, take0, keyset)
