"""Bootstrapping-key unrolling: two blind-rotation steps per iteration.

MATCHA (the paper's reference [28], building on [59] and [60]) halves the
*sequential depth* of blind rotation by pairing key bits: for the pair
``(s_i, s_j)``,

``X^{a_i s_i + a_j s_j} = s_i s_j X^{a_i+a_j} + s_i (1-s_j) X^{a_i}
+ (1-s_i) s_j X^{a_j} + (1-s_i)(1-s_j)``

so one *unrolled* iteration computes

``ACC <- BSK_ij^(11) ⊡ (X^{a_i+a_j}-1)ACC + BSK_ij^(10) ⊡ (X^{a_i}-1)ACC
+ BSK_ij^(01) ⊡ (X^{a_j}-1)ACC + ACC``

with three GGSW ciphertexts per pair (the ``00`` term is the identity).
The trade-off the paper leans on when comparing against MATCHA: the
unrolled key is 1.5x larger and each iteration does 3 external products
instead of 2, but there are only ``n/2`` sequential iterations - a
latency-for-bandwidth trade.  ``unrolled_blind_rotation_tradeoff``
quantifies it for the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..params import TFHEParams
from .bootstrap import key_switch
from .ggsw import GgswCiphertext, external_product_transform, ggsw_encrypt
from .glwe import GlweCiphertext, glwe_rotate, glwe_trivial, sample_extract
from .keys import KeySet
from .lwe import LweCiphertext
from .bootstrap import modulus_switch

__all__ = [
    "UnrolledBsk",
    "generate_unrolled_bsk",
    "blind_rotate_unrolled",
    "programmable_bootstrap_unrolled",
    "unrolled_blind_rotation_tradeoff",
]


@dataclass
class UnrolledBsk:
    """Unrolled bootstrapping key: 3 GGSWs per key-bit pair.

    ``pairs[p] = (bsk_11, bsk_10, bsk_01)`` encrypting ``s_i*s_j``,
    ``s_i*(1-s_j)`` and ``(1-s_i)*s_j`` for the pair ``(2p, 2p+1)``.
    An odd trailing bit keeps its ordinary GGSW in ``tail``.
    """

    pairs: list
    tail: GgswCiphertext = None

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)

    def ggsw_count(self) -> int:
        return 3 * self.num_pairs + (1 if self.tail is not None else 0)


def generate_unrolled_bsk(keyset: KeySet, rng: np.random.Generator) -> UnrolledBsk:
    """Build the unrolled key from the secret LWE key bits.

    Requires the client-side secret key (key generation is a client
    operation in TFHE; the server only ever sees the GGSW outputs).
    """
    if keyset.lwe_key is None:
        raise ValueError("unrolled key generation needs the secret LWE key")
    params = keyset.params
    bits = keyset.lwe_key.bits
    pairs = []
    i = 0
    while i + 1 < params.n:
        s_i, s_j = int(bits[i]), int(bits[i + 1])
        enc = lambda m: ggsw_encrypt(
            m, keyset.glwe_key, params.beta_bits, params.l_b, rng,
            noise_log2=params.glwe_noise_log2, q_bits=params.q_bits,
        )
        pairs.append((enc(s_i * s_j), enc(s_i * (1 - s_j)), enc((1 - s_i) * s_j)))
        i += 2
    tail = keyset.bsk[params.n - 1] if params.n % 2 else None
    return UnrolledBsk(pairs, tail)


def _cmux_term(ggsw: GgswCiphertext, acc: GlweCiphertext, rotation: int) -> np.ndarray:
    """``GGSW ⊡ (X^rotation * ACC - ACC)`` as raw component data."""
    diff = GlweCiphertext(glwe_rotate(acc, rotation).data - acc.data)
    return external_product_transform(ggsw, diff).data


def blind_rotate_unrolled(
    a_tilde: np.ndarray,
    b_tilde: int,
    test_poly: np.ndarray,
    keyset: KeySet,
    unrolled: UnrolledBsk,
) -> GlweCiphertext:
    """Blind rotation with two mask elements consumed per iteration."""
    params = keyset.params
    acc = glwe_rotate(glwe_trivial(test_poly, params.k), -b_tilde)
    for p, (bsk_11, bsk_10, bsk_01) in enumerate(unrolled.pairs):
        t_i = int(a_tilde[2 * p])
        t_j = int(a_tilde[2 * p + 1])
        if t_i == 0 and t_j == 0:
            continue
        data = acc.data.copy()
        data = data + _cmux_term(bsk_11, acc, t_i + t_j)
        data = data + _cmux_term(bsk_10, acc, t_i)
        data = data + _cmux_term(bsk_01, acc, t_j)
        acc = GlweCiphertext(data)
    if unrolled.tail is not None:
        t = int(a_tilde[params.n - 1])
        if t:
            acc = GlweCiphertext(acc.data + _cmux_term(unrolled.tail, acc, t))
    return acc


def programmable_bootstrap_unrolled(
    ct: LweCiphertext,
    test_poly: np.ndarray,
    keyset: KeySet,
    unrolled: UnrolledBsk,
) -> LweCiphertext:
    """Full bootstrap using the unrolled blind rotation."""
    params = keyset.params
    a_tilde, b_tilde = modulus_switch(ct, params.N)
    acc = blind_rotate_unrolled(a_tilde, b_tilde, test_poly, keyset, unrolled)
    return key_switch(sample_extract(acc, 0), keyset.ksk)


def unrolled_blind_rotation_tradeoff(params: TFHEParams) -> dict:
    """Quantify the unrolling trade (for the performance model).

    Returns sequential iterations, external products, and BSK bytes for
    the plain and unrolled variants - the numbers behind the paper's
    observation that MATCHA trades key size for latency while Morphling
    goes after throughput instead.
    """
    pairs = params.n // 2
    tail = params.n % 2
    plain_products = params.n
    unrolled_products = 3 * pairs + tail
    ggsw_bytes = (
        params.polynomials_per_ggsw * params.N * params.coeff_bytes
    )
    return {
        "plain_iterations": params.n,
        "unrolled_iterations": pairs + tail,
        "plain_external_products": plain_products,
        "unrolled_external_products": unrolled_products,
        "plain_bsk_bytes": params.n * ggsw_bytes,
        "unrolled_bsk_bytes": (3 * pairs + tail) * ggsw_bytes,
        "latency_ratio": (pairs + tail) / params.n,
        "work_ratio": unrolled_products / plain_products,
    }
