"""Signed (balanced) gadget decomposition.

The external product and key switching both decompose torus values into
``l`` small digits of base ``beta`` so noise growth stays linear in
``beta`` rather than in ``q`` (Section II-B):

``Decomp(c) = (d_1, ..., d_l)`` with ``c ~= sum_j d_j * q / beta**j``
and balanced digits ``d_j in [-beta/2, beta/2)``.

Hardware-wise this is the Decomposition Unit's bit-slice + round step
(Section V-A1).  The decomposition is *approximate*: the bits below
``q/beta**l`` are rounded away first, bounding the recomposition error by
``q / (2 * beta**l)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "decompose",
    "recompose",
    "decomposition_error_bound",
]


def decompose(values: np.ndarray, beta_bits: int, levels: int, q_bits: int = 32) -> np.ndarray:
    """Balanced base-``2**beta_bits`` decomposition of torus numerators.

    Parameters
    ----------
    values:
        uint32 torus numerators, any shape.
    beta_bits, levels:
        Digit width (``log2 beta``) and number of digits ``l``.
    q_bits:
        Ciphertext modulus width.

    Returns
    -------
    int64 array of shape ``values.shape[:-1] + (levels,) + values.shape[-1:]``
    holding centered digits; digit ``j`` (0-based) carries weight
    ``q / beta**(j+1)``.
    """
    if beta_bits * levels > q_bits:
        raise ValueError("decomposition exceeds the modulus width")
    beta = 1 << beta_bits
    v = np.asarray(values, dtype=np.uint32).astype(np.int64)
    # Round to the closest multiple of q / beta**levels (drop the low bits).
    drop_bits = q_bits - beta_bits * levels
    if drop_bits:
        v = (v + (1 << (drop_bits - 1))) >> drop_bits
    # v now has levels*beta_bits significant bits; extract balanced digits
    # least-significant first, propagating the balancing carry upward.
    out_shape = values.shape[:-1] + (levels,) + values.shape[-1:]
    digits = np.empty(out_shape, dtype=np.int64)
    for j in range(levels - 1, -1, -1):
        d = v & (beta - 1)
        carry = d >= beta // 2
        d = d - carry * beta
        v = (v - d) >> beta_bits
        # Move the digit axis next to the coefficient axis.
        digits[..., j, :] = d
    return digits


def recompose(digits: np.ndarray, beta_bits: int, q_bits: int = 32) -> np.ndarray:
    """Rebuild torus numerators from balanced digits (inverse of decompose).

    ``digits`` has the level axis second-to-last, as produced by
    :func:`decompose`.
    """
    levels = digits.shape[-2]
    if beta_bits * levels > q_bits:
        raise ValueError("decomposition exceeds the modulus width")
    acc = np.zeros(digits.shape[:-2] + digits.shape[-1:], dtype=np.int64)
    for j in range(levels):
        weight = 1 << (q_bits - beta_bits * (j + 1))
        acc += digits[..., j, :] * weight
    return (acc & ((1 << q_bits) - 1)).astype(np.uint32)


def decomposition_error_bound(beta_bits: int, levels: int, q_bits: int = 32) -> int:
    """Worst-case |c - recompose(decompose(c))| as a centered distance mod q."""
    drop_bits = q_bits - beta_bits * levels
    if drop_bits <= 0:
        return 0
    return 1 << (drop_bits - 1)
