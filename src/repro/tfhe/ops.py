"""High-level homomorphic operations built on programmable bootstrapping.

These are the operations the paper's applications consume: boolean gates
(XG-Boost comparisons and control logic), LUT evaluation, ReLU (DeepCNN /
VGG activations), and thresholds.  Boolean gates follow the
sum-then-bootstrap pattern with message modulus ``p = 8`` so two operand
bits plus carry stay inside the padded half-torus.

``TfheContext`` bundles a keyset with encrypt/decrypt helpers so examples
and applications read naturally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import Optional

from ..observability import NOISE as _NOISE
from ..params import TFHEParams
from .bootstrap import BootstrapTrace, programmable_bootstrap, programmable_bootstrap_batch
from .encoding import make_test_polynomial, message_to_signed, signed_to_message
from .keys import KeySet, generate_keyset
from .lwe import (
    LweCiphertext,
    lwe_add,
    lwe_add_plain,
    lwe_encrypt,
    lwe_decrypt_phase,
    lwe_scalar_mul,
)
from .torus import decode_message, encode_message

__all__ = ["TfheContext", "GATE_LUTS"]

#: LUTs over the two-bit sum ``x = b1 + b2`` (values 0..2), message space p=8.
GATE_LUTS = {
    "nand": lambda x: 1 if x < 2 else 0,
    "and": lambda x: 1 if x == 2 else 0,
    "or": lambda x: 1 if x >= 1 else 0,
    "nor": lambda x: 1 if x == 0 else 0,
    "xor": lambda x: 1 if x == 1 else 0,
    "xnor": lambda x: 1 if x != 1 else 0,
}


@dataclass
class TfheContext:
    """A keyset plus the encode/encrypt/bootstrap conveniences.

    ``default_p`` is the message modulus used by :meth:`encrypt` when none
    is given; gates always use ``p = 8`` internally.
    """

    keyset: KeySet
    default_p: int = 8
    engine: str = "transform"
    trace: Optional[BootstrapTrace] = None

    # -- construction -------------------------------------------------
    @classmethod
    def create(cls, params: TFHEParams, seed: int = 0, **kwargs) -> "TfheContext":
        """Generate fresh keys for ``params`` with a deterministic seed."""
        rng = np.random.default_rng(seed)
        return cls(generate_keyset(params, rng), **kwargs)

    @property
    def params(self) -> TFHEParams:
        return self.keyset.params

    def _rng(self) -> np.random.Generator:
        # Encryption randomness; fresh generator per call keeps the context
        # stateless while staying reproducible under a fixed OS seed.
        return np.random.default_rng()

    # -- encrypt / decrypt --------------------------------------------
    def encrypt(self, message: int, p: int = None) -> LweCiphertext:
        """Encrypt ``message`` in ``Z_p`` (must stay below p/2: padding bit)."""
        p = p or self.default_p
        if not 0 <= message < p // 2:
            raise ValueError(f"message {message} outside padded range [0, {p // 2})")
        m_torus = encode_message(message, p, self.params.q_bits)[()]
        return lwe_encrypt(m_torus, self.keyset.lwe_key, self._rng(),
                           noise_log2=self.params.lwe_noise_log2)

    def encrypt_signed(self, value: int, p: int = None) -> LweCiphertext:
        """Encrypt a signed value in ``[-p/4, p/4)`` via offset binary."""
        p = p or self.default_p
        return self.encrypt(signed_to_message(value, p), p)

    def decrypt(self, ct: LweCiphertext, p: int = None) -> int:
        """Decrypt and decode back to ``Z_p``."""
        p = p or self.default_p
        if _NOISE.enabled:
            record = _NOISE.record_of(ct)
            if record is not None:
                # Decode rounds to the nearest multiple of q/p; the margin
                # is half a step minus the shadow's offset from the grid.
                scale = (1 << self.params.q_bits) // p
                off = record.expected % scale
                off = min(off, scale - off) / float(1 << self.params.q_bits)
                _NOISE.record_failure_point(
                    "decode", 0.5 / p - off, record.predicted_variance,
                    op_id=record.op_id,
                )
        phase = lwe_decrypt_phase(ct, self.keyset.lwe_key)
        return int(decode_message(np.asarray(phase), p, self.params.q_bits)[()])

    def decrypt_signed(self, ct: LweCiphertext, p: int = None) -> int:
        """Decrypt an offset-binary signed value."""
        p = p or self.default_p
        return message_to_signed(self.decrypt(ct, p), p)

    # -- bootstrapped operations ---------------------------------------
    def apply_lut(self, ct: LweCiphertext, lut_half, p: int = None) -> LweCiphertext:
        """Programmable bootstrap evaluating ``lut_half`` over ``[0, p/2)``."""
        p = p or self.default_p
        tp = self._lut_test_poly(lut_half, p)
        return programmable_bootstrap(ct, tp, self.keyset,
                                      engine=self.engine, trace=self.trace)

    def _lut_test_poly(self, lut_half, p: int) -> np.ndarray:
        lut = np.asarray([lut_half(x) if callable(lut_half) else lut_half[x]
                          for x in range(p // 2)], dtype=np.int64)
        return make_test_polynomial(lut, self.params, p)

    def apply_lut_batch(self, cts: list, lut_halves: list, p: int = None,
                        noise_labels: list = None) -> list:
        """Bootstrap several ciphertexts in one batched pass.

        ``lut_halves[r]`` programs sample ``r`` (per-sample test
        polynomials riding the same BSK pass).  Falls back to scalar
        bootstraps for the reference engines.  Bit-identical to mapping
        :meth:`apply_lut` over the inputs.
        """
        p = p or self.default_p
        if self.engine != "transform":
            outs = []
            for r, (ct, lut_half) in enumerate(zip(cts, lut_halves)):
                label = noise_labels[r] if noise_labels is not None else None
                if label is not None and _NOISE.enabled:
                    with _NOISE.labelled(label):
                        outs.append(self.apply_lut(ct, lut_half, p))
                else:
                    outs.append(self.apply_lut(ct, lut_half, p))
            return outs
        tps = np.stack([self._lut_test_poly(lut_half, p) for lut_half in lut_halves])
        return programmable_bootstrap_batch(
            cts, tps, self.keyset, trace=self.trace, noise_labels=noise_labels
        )

    def gate_batch(self, names: list, xs: list, ys: list) -> list:
        """Evaluate independent binary gates as one batched bootstrap.

        The gates share every BSK row (one blind-rotation pass for the
        whole level of a circuit); each sample keeps its own LUT and its
        own ``gate:<name>`` noise label.
        """
        luts = []
        sums = []
        for name, x, y in zip(names, xs, ys):
            try:
                luts.append(GATE_LUTS[name])
            except KeyError:
                raise ValueError(
                    f"unknown gate {name!r}; known: {sorted(GATE_LUTS)}"
                ) from None
            if _NOISE.enabled:
                with _NOISE.labelled(f"gate:{name}"):
                    sums.append(lwe_add(x, y))
            else:
                sums.append(lwe_add(x, y))
        labels = [f"gate:{name}" for name in names] if _NOISE.enabled else None
        return self.apply_lut_batch(sums, luts, p=8, noise_labels=labels)

    def bootstrap(self, ct: LweCiphertext, p: int = None) -> LweCiphertext:
        """Noise-refresh bootstrap (identity LUT)."""
        p = p or self.default_p
        return self.apply_lut(ct, lambda x: x, p)

    def gate(self, name: str, x: LweCiphertext, y: LweCiphertext) -> LweCiphertext:
        """Evaluate a binary gate on bit ciphertexts encrypted with p=8."""
        try:
            lut = GATE_LUTS[name]
        except KeyError:
            raise ValueError(f"unknown gate {name!r}; known: {sorted(GATE_LUTS)}") from None
        if _NOISE.enabled:
            with _NOISE.labelled(f"gate:{name}"):
                return self.apply_lut(lwe_add(x, y), lut, p=8)
        return self.apply_lut(lwe_add(x, y), lut, p=8)

    def lwe_not(self, x: LweCiphertext) -> LweCiphertext:
        """NOT of a bit: 1 - x, linear (no bootstrap needed)."""
        one = encode_message(1, 8, self.params.q_bits)[()]
        return lwe_add_plain(lwe_scalar_mul(-1, x), int(one))

    def relu_signed(self, ct: LweCiphertext, p: int = None) -> LweCiphertext:
        """ReLU on an offset-binary signed value (single bootstrap)."""
        p = p or self.default_p
        quarter = p // 4
        return self.apply_lut(ct, lambda x: max(x - quarter, 0) + quarter, p)

    def compare_ge(self, ct: LweCiphertext, threshold: int, p: int = None) -> LweCiphertext:
        """``1`` if the signed value >= ``threshold`` else ``0`` (one bootstrap).

        Output is a bit in message space p=8 so it feeds directly into
        gates - the XG-Boost node evaluation pattern.
        """
        p = p or self.default_p
        quarter = p // 4
        lut = [1 if (x - quarter) >= threshold else 0 for x in range(p // 2)]
        bit = self.apply_lut(ct, lut, p)
        return self._rescale_bit(bit, p)

    def _rescale_bit(self, bit_ct: LweCiphertext, from_p: int) -> LweCiphertext:
        """Rescale a {0,1} result from modulus ``from_p`` to the gate modulus 8.

        Encodings differ only by the scale ``q/p``; multiplying by the
        integer ratio moves between them exactly.
        """
        if from_p == 8:
            return bit_ct
        if from_p < 8:
            raise ValueError("bit rescaling expects from_p >= 8")
        return lwe_scalar_mul(from_p // 8, bit_ct)
