"""Radix-encoded integers over multiple LWE ciphertexts.

The paper's Section I: "To keep the ciphertext parameter small, the TFHE
scheme encrypts large-precision plaintext into multiple ciphertexts ...
the operation can be seen as the computation of multiple small-parameter
ciphertexts rather than a single large-parameter ciphertext."  This
module implements that radix representation (TFHE-rs-style): an integer
is a little-endian vector of base-``2**digit_bits`` digits, each a
separate LWE ciphertext with message modulus ``p = 16`` - leaving carry
headroom below the padding bit.

Operations:

- addition: linear digit-wise sum, then sequential carry propagation
  (two bootstraps per digit: extract low digit, extract carry);
- small-scalar multiplication: linear scaling + the same carry fix-up;
- equality / less-than: digit-wise LUT comparisons combined with gates.

Each operation also reports its bootstrap demand so the scheduler can
cost wide-integer workloads on the accelerator model.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

from ..observability import NOISE as _NOISE
from .lwe import LweCiphertext, lwe_add
from .ops import TfheContext

__all__ = [
    "RadixInteger",
    "encrypt_integer",
    "decrypt_integer",
    "add_integers",
    "scalar_mul_integer",
    "equals_integer",
    "less_than_integer",
    "bootstrap_cost",
]

#: Message modulus per digit ciphertext: padded half-space [0, 8) leaves
#: room for digit sums with carries.
DIGIT_P = 16

_NULL = nullcontext()


def _scope(label: str):
    """Noise-telemetry label scope; the shared no-op when tracking is off."""
    return _NOISE.labelled(label) if _NOISE.enabled else _NULL


@dataclass
class RadixInteger:
    """Little-endian radix integer: one LWE ciphertext per digit."""

    digits: list
    digit_bits: int

    def __post_init__(self) -> None:
        if not self.digits:
            raise ValueError("need at least one digit")
        if not 1 <= self.digit_bits <= 2:
            # base 2 or 4: larger bases overflow the p=16 carry headroom.
            raise ValueError("digit_bits must be 1 or 2")

    @property
    def base(self) -> int:
        return 1 << self.digit_bits

    @property
    def num_digits(self) -> int:
        return len(self.digits)

    @property
    def bit_width(self) -> int:
        return self.num_digits * self.digit_bits

    @property
    def max_value(self) -> int:
        return (1 << self.bit_width) - 1


def encrypt_integer(
    ctx: TfheContext, value: int, num_digits: int, digit_bits: int = 2
) -> RadixInteger:
    """Encrypt ``value`` as ``num_digits`` base-``2**digit_bits`` digits."""
    base = 1 << digit_bits
    if not 0 <= value < base ** num_digits:
        raise ValueError(
            f"value {value} outside [0, {base ** num_digits}) for {num_digits} digits"
        )
    digits = []
    v = value
    for _ in range(num_digits):
        digits.append(ctx.encrypt(v % base, DIGIT_P))
        v //= base
    return RadixInteger(digits, digit_bits)


def decrypt_integer(ctx: TfheContext, x: RadixInteger) -> int:
    """Decrypt a radix integer back to a python int."""
    value = 0
    for digit_ct in reversed(x.digits):
        value = value * x.base + ctx.decrypt(digit_ct, DIGIT_P)
    return value


def _normalize(ctx: TfheContext, raw: list, digit_bits: int) -> RadixInteger:
    """Carry-propagate raw digit sums back into canonical digits.

    ``raw[i]`` holds a ciphertext of a value in [0, 8); two bootstraps
    per digit split it into (low digit, carry) and the carry joins the
    next digit linearly.  The two LUTs read the same input, so they run
    as one batch of two through the shared blind-rotation pass.  The
    final carry is dropped (wraparound arithmetic, like fixed-width
    hardware integers).
    """
    base = 1 << digit_bits
    out = []
    carry = None
    for digit_ct in raw:
        acc = digit_ct if carry is None else lwe_add(digit_ct, carry)
        low, carry = ctx.apply_lut_batch(
            [acc, acc], [lambda v: v % base, lambda v: v // base], DIGIT_P
        )
        out.append(low)
    return RadixInteger(out, digit_bits)


def add_integers(ctx: TfheContext, x: RadixInteger, y: RadixInteger) -> RadixInteger:
    """Homomorphic addition (mod ``base**num_digits``)."""
    if x.digit_bits != y.digit_bits or x.num_digits != y.num_digits:
        raise ValueError("operands must share the radix layout")
    with _scope("int:add"):
        raw = [lwe_add(a, b) for a, b in zip(x.digits, y.digits)]
        return _normalize(ctx, raw, x.digit_bits)


def scalar_mul_integer(ctx: TfheContext, scalar: int, x: RadixInteger) -> RadixInteger:
    """Multiply by a small plaintext scalar via normalized addition chains.

    Direct digit scaling would push digit sums past the carry headroom
    (``scalar * (base-1) + carry >= p/2``), so each doubling/addition is
    re-normalized - the same strategy TFHE-rs uses for small clear
    multipliers.
    """
    if scalar < 0:
        raise ValueError("scalar must be non-negative")
    if scalar == 0:
        return encrypt_integer(ctx, 0, x.num_digits, x.digit_bits)
    result = None
    addend = x
    bit = scalar
    while bit:
        if bit & 1:
            result = addend if result is None else add_integers(ctx, result, addend)
        bit >>= 1
        if bit:
            addend = add_integers(ctx, addend, addend)
    return result


def equals_integer(ctx: TfheContext, x: RadixInteger, y: RadixInteger) -> LweCiphertext:
    """Bit ciphertext: 1 iff x == y (digit-wise compare + AND tree)."""
    if x.digit_bits != y.digit_bits or x.num_digits != y.num_digits:
        raise ValueError("operands must share the radix layout")
    with _scope("int:equals"):
        acc = None
        for a, b in zip(x.digits, y.digits):
            shifted = _shifted_difference(a, b, x.base)
            eq_bit = ctx.apply_lut(shifted, lambda v: 1 if v == x.base else 0, DIGIT_P)
            eq_bit = ctx._rescale_bit(eq_bit, DIGIT_P)
            acc = eq_bit if acc is None else ctx.gate("and", acc, eq_bit)
        return acc


def _shifted_difference(a: LweCiphertext, b: LweCiphertext, base: int) -> LweCiphertext:
    """``(a - b) + base``: maps the digit difference into [1, 2*base)."""
    from .lwe import lwe_add_plain, lwe_sub
    from .torus import encode_message

    offset = int(encode_message(base, DIGIT_P)[()])
    return lwe_add_plain(lwe_sub(a, b), offset)


def less_than_integer(ctx: TfheContext, x: RadixInteger, y: RadixInteger) -> LweCiphertext:
    """Bit ciphertext: 1 iff x < y (LSB-to-MSB digit scan).

    At each more-significant digit: strictly less wins outright; equal
    digits inherit the verdict of the lower digits.
    """
    if x.digit_bits != y.digit_bits or x.num_digits != y.num_digits:
        raise ValueError("operands must share the radix layout")
    with _scope("int:less_than"):
        result = None
        for a, b in zip(x.digits, y.digits):
            shifted = _shifted_difference(a, b, x.base)
            lt_bit = ctx._rescale_bit(
                ctx.apply_lut(shifted, lambda v: 1 if v < x.base else 0, DIGIT_P), DIGIT_P
            )
            eq_bit = ctx._rescale_bit(
                ctx.apply_lut(shifted, lambda v: 1 if v == x.base else 0, DIGIT_P), DIGIT_P
            )
            if result is None:
                result = lt_bit
            else:
                keep = ctx.gate("and", eq_bit, result)
                result = ctx.gate("or", lt_bit, keep)
        return result


def bootstrap_cost(operation: str, num_digits: int, scalar: int = 3) -> int:
    """Bootstraps an integer operation needs (for scheduler costing)."""
    if operation == "scalar_mul":
        if scalar <= 0:
            return 0
        adds = bin(scalar).count("1") - 1 + (scalar.bit_length() - 1)
        return adds * 2 * num_digits
    costs = {
        "add": 2 * num_digits,
        "equals": 2 * num_digits - 1,
        "less_than": 4 * num_digits - 2,
    }
    try:
        return costs[operation]
    except KeyError:
        raise ValueError(
            f"unknown operation {operation!r}; known: {sorted(costs) + ['scalar_mul']}"
        ) from None
