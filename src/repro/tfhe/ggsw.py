"""GGSW ciphertexts, the external product, and the CMux gate.

A GGSW ciphertext of a plaintext ``m`` is a ``(k+1)*l_b`` stack of GLWE
rows: row ``(i, j)`` encrypts ``-m * S_i * q/beta**(j+1)`` (with ``S_{k}``
read as ``-1``, i.e. the body row carries ``+m * q/beta**(j+1)``).  The
external product ``GGSW boxdot GLWE`` decomposes the GLWE operand and
contracts it against the row stack - the vector-of-polynomials x
matrix-of-polynomials multiplication of the paper's equations (1)-(2).

Two functional engines are provided, mirroring the hardware exactly:

- :func:`external_product` - coefficient-domain reference (per-row
  polynomial products);
- :func:`external_product_transform` - Morphling's datapath: forward
  transforms of the decomposed digits (ACC input), pointwise MACs in the
  transform domain (the VPE array), one inverse transform per output
  polynomial (the Input+Output reuse), with the BSK pre-transformed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..transforms.backends import active_backend
from ..transforms.negacyclic import negacyclic_fft
from .decomposition import decompose
from .glwe import GlweCiphertext, GlweSecretKey, glwe_encrypt
from .polynomial import from_spectrum, poly_mul
from .torus import TORUS_DTYPE, to_torus, u32

__all__ = [
    "GgswCiphertext",
    "ggsw_encrypt",
    "external_product",
    "external_product_transform",
    "external_product_spectrum_batch",
    "cmux",
]


@dataclass
class GgswCiphertext:
    """GGSW row stack of shape ``((k+1) * l_b, k+1, N)``.

    ``rows[r]`` is one GLWE ciphertext; ``r = i * l_b + j`` pairs component
    ``i`` (0..k) with decomposition level ``j`` (0..l_b-1).  ``spectrum``
    caches the transform-domain image (computed lazily), which is what the
    Private-A2 buffer holds on chip.
    """

    rows: np.ndarray
    beta_bits: int
    _spectrum: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=TORUS_DTYPE)
        if self.rows.ndim != 3:
            raise ValueError("GGSW rows must have shape ((k+1)*l_b, k+1, N)")

    @property
    def k(self) -> int:
        return self.rows.shape[1] - 1

    @property
    def l_b(self) -> int:
        return self.rows.shape[0] // (self.k + 1)

    @property
    def N(self) -> int:
        return self.rows.shape[2]

    def spectrum(self) -> np.ndarray:
        """Transform-domain image of every row polynomial (cached).

        Coefficients are lifted to centered representatives first so the
        float transform stays well-conditioned - this matches the
        pre-computation Morphling does before loading the Private-A2
        buffer.
        """
        if self._spectrum is None:
            # repro: allow[RPR002] declared FFT boundary: centered lift feeds the transform engine
            centered = self.rows.astype(np.int32).astype(np.float64)
            self._spectrum = negacyclic_fft(centered)
        return self._spectrum


def ggsw_encrypt(
    m: int,
    key: GlweSecretKey,
    beta_bits: int,
    l_b: int,
    rng: np.random.Generator,
    noise_log2: float = -25.0,
    q_bits: int = 32,
) -> GgswCiphertext:
    """Encrypt a small integer plaintext (typically a key bit) as GGSW."""
    k, n = key.k, key.N
    zero = np.zeros(n, dtype=TORUS_DTYPE)
    rows = np.empty(((k + 1) * l_b, k + 1, n), dtype=TORUS_DTYPE)
    for i in range(k + 1):
        for j in range(l_b):
            enc = glwe_encrypt(zero, key, rng, noise_log2)
            # Gadget term: add m * q/beta**(j+1) to the constant coefficient
            # of component i (row (i,j) of Z + m*G).
            weight = to_torus(np.int64(m) * (1 << (q_bits - beta_bits * (j + 1))))
            enc.data[i, 0] = u32(int(enc.data[i, 0]) + int(weight))
            rows[i * l_b + j] = enc.data
    return GgswCiphertext(rows, beta_bits)


def _decompose_glwe(ct: GlweCiphertext, beta_bits: int, l_b: int) -> np.ndarray:
    """Gadget-decompose all k+1 polynomials: shape ``(k+1, l_b, N)`` int64."""
    return decompose(ct.data, beta_bits, l_b)


def external_product(ggsw: GgswCiphertext, glwe: GlweCiphertext, engine: str = "fft") -> GlweCiphertext:
    """``GGSW boxdot GLWE`` in the coefficient domain (reference engine)."""
    if ggsw.N != glwe.N or ggsw.k != glwe.k:
        raise ValueError("GGSW/GLWE dimensions do not match")
    digits = _decompose_glwe(glwe, ggsw.beta_bits, ggsw.l_b)
    k, l_b, n = ggsw.k, ggsw.l_b, ggsw.N
    acc = np.zeros((k + 1, n), dtype=np.int64)
    for i in range(k + 1):
        for j in range(l_b):
            row = ggsw.rows[i * l_b + j]
            for c in range(k + 1):
                acc[c] += poly_mul(digits[i, j], row[c], engine=engine).astype(np.int64)
    return GlweCiphertext(to_torus(acc))


def external_product_spectrum_batch(
    row_spec: np.ndarray,
    glwe_data: np.ndarray,
    beta_bits: int,
    l_b: int,
) -> np.ndarray:
    """Batched ``GGSW boxdot GLWE`` against a pre-transformed row stack.

    The shared kernel behind every transform-engine external product:

    - ``row_spec``: ``((k+1)*l_b, k+1, N/2)`` complex spectra of one GGSW's
      rows (:meth:`GgswCiphertext.spectrum` or a slice of the eager BSK
      table);
    - ``glwe_data``: ``(B, k+1, N)`` torus data of ``B`` independent GLWE
      accumulators sharing that GGSW - the software analogue of one BSK
      row fanned across the VPE-array rows.

    One batched forward transform of all ``B*(k+1)*l_b`` decomposed digits
    (Input reuse), a single einsum contraction over ``(component, level)``
    per frequency bin (the VPE pointwise MACs with Output reuse in the
    POLY-ACC-REG), and one batched inverse transform for all ``B*(k+1)``
    outputs.  No Python loops anywhere in the MAC.

    The contraction inherits ``row_spec``'s precision: a ``complex64``
    table runs the whole MAC in single precision.  With the default
    ``complex128`` table the result is bit-identical for every batch size
    (the reduction order over ``(i, j)`` is fixed and the transforms are
    elementwise along the batch axes).

    Returns ``(B, k+1, N)`` torus data.
    """
    n = glwe_data.shape[-1]
    kp1 = glwe_data.shape[-2]
    digits = decompose(glwe_data, beta_bits, l_b)  # (B, k+1, l_b, N) int64
    # repro: allow[RPR003] single-precision mode is a declared FFT boundary: the
    # digits are small centered ints, exactly representable in float32
    real_dtype = np.float32 if row_spec.dtype == np.complex64 else np.float64
    # repro: allow[RPR002] declared FFT boundary: decomposed digits are small signed ints
    digit_spec = negacyclic_fft(digits.astype(real_dtype))  # (B, k+1, l_b, N/2)
    rows = row_spec.reshape(kp1, l_b, kp1, n // 2)
    # The VPE pointwise MACs, dispatched through the active compute
    # backend; the base implementation keeps numpy's fixed reduction
    # order so results stay bit-stable across backends.
    acc_spec = active_backend().einsum(
        "aijf,ijcf->acf", digit_spec, rows
    )  # (B, k+1, N/2)
    return from_spectrum(acc_spec, n)


def external_product_transform(ggsw: GgswCiphertext, glwe: GlweCiphertext) -> GlweCiphertext:
    """``GGSW boxdot GLWE`` via Morphling's transform-domain datapath.

    Forward-transform the ``(k+1)*l_b`` decomposed digits once (Input
    reuse), accumulate all pointwise products per output component in the
    transform domain (Output reuse - the POLY-ACC-REG), then inverse
    transform each of the ``k+1`` outputs exactly once.  Runs as a
    batch-of-one through :func:`external_product_spectrum_batch` so the
    scalar and batched paths share one kernel.
    """
    if ggsw.N != glwe.N or ggsw.k != glwe.k:
        raise ValueError("GGSW/GLWE dimensions do not match")
    out = external_product_spectrum_batch(
        ggsw.spectrum(), glwe.data[None], ggsw.beta_bits, ggsw.l_b
    )
    return GlweCiphertext(out[0])


def cmux(
    ggsw_bit: GgswCiphertext,
    ct_false: GlweCiphertext,
    ct_true: GlweCiphertext,
    engine: str = "transform",
) -> GlweCiphertext:
    """Homomorphic multiplexer: returns ``ct_true`` if the GGSW bit is 1.

    ``CMux(b, c0, c1) = b boxdot (c1 - c0) + c0`` - the body of the blind
    rotation's per-iteration update (Algorithm 1, line 4).
    """
    diff = GlweCiphertext(ct_true.data - ct_false.data)
    if engine == "transform":
        prod = external_product_transform(ggsw_bit, diff)
    else:
        prod = external_product(ggsw_bit, diff, engine=engine)
    return GlweCiphertext(prod.data + ct_false.data)
