"""Noise variance tracking and measurement.

Theoretical variance formulas follow the CGGI/TFHE analysis (paper
references [14], [34], [35]): the external product adds noise linear in
``beta`` and the decomposition error, key switching adds noise linear in
the KSK digits.  The measurement helpers decrypt with the secret key and
report centered phase error, letting tests assert that observed noise
stays within the predicted budget - the same check the paper's functional
verification performs.
"""

from __future__ import annotations

import math

import numpy as np

from ..params import TFHEParams
from .glwe import GlweCiphertext, GlweSecretKey, glwe_decrypt_phase
from .lwe import LweCiphertext, LweSecretKey, lwe_decrypt_phase
from .torus import to_signed, to_torus

__all__ = [
    "external_product_noise_variance",
    "blind_rotation_noise_variance",
    "key_switch_noise_variance",
    "modulus_switch_noise_variance",
    "bootstrap_output_noise_std_log2",
    "max_noise_for_message_modulus",
    "measure_lwe_noise",
    "measure_glwe_noise",
]

_Q = 2.0 ** 32


def _var_from_log2(std_log2: float) -> float:
    """Variance (torus units) of a Gaussian with stddev ``2**std_log2``."""
    return (2.0 ** std_log2) ** 2


def external_product_noise_variance(params: TFHEParams, input_variance: float) -> float:
    """Output noise variance of one external product (torus units).

    ``V_out ~= (k+1) * l_b * N * (beta/2)**2 * V_ggsw
    + input_variance + V_decomp``
    where the decomposition error contributes
    ``(1 + k*N) * eps**2 / 12`` with ``eps = 1/beta**l_b`` (uniform
    rounding error model).
    """
    beta = float(params.beta)
    v_ggsw = _var_from_log2(params.glwe_noise_log2)
    gadget_term = (params.k + 1) * params.l_b * params.N * (beta / 2.0) ** 2 * v_ggsw
    eps = beta ** (-params.l_b)
    decomp_term = (1 + params.k * params.N) * (eps ** 2) / 12.0
    return gadget_term + input_variance + decomp_term


def blind_rotation_noise_variance(params: TFHEParams) -> float:
    """Noise variance after ``n`` chained external products (fresh TP start)."""
    variance = 0.0
    per_step = external_product_noise_variance(params, 0.0)
    return params.n * per_step + variance


def key_switch_noise_variance(params: TFHEParams, input_variance: float) -> float:
    """Noise variance added by key switching the extracted ciphertext."""
    v_ksk = _var_from_log2(params.lwe_noise_log2)
    kn = params.k * params.N
    digit_term = kn * params.l_k * ((params.beta_ks / 2.0) ** 2 / 3.0) * v_ksk
    eps = float(params.beta_ks) ** (-params.l_k)
    decomp_term = kn * (eps ** 2) / 12.0
    return input_variance + digit_term + decomp_term


def modulus_switch_noise_variance(params: TFHEParams) -> float:
    """Variance (torus units) of the rounding error added by MS to ``2N``.

    Each of the ``n + 1`` numerators rounds to the ``Z_{2N}`` grid with a
    uniform error of width ``1/(2N)``; the ``a_i`` errors enter the phase
    weighted by the key bits (E[s_i] = 1/2 for binary keys):

    ``V_ms = (1/(2N))**2 / 12 * (1 + n/2)``

    This error never shows up in the bootstrap *output* noise (the test
    polynomial is piecewise constant over the ``Z_{2N}`` buckets) - it
    widens the *decision* distribution that picks the bucket, so it
    belongs in decryption-failure estimates, not output-noise prediction.
    """
    step = 1.0 / (2.0 * params.N)
    return step * step / 12.0 * (1.0 + params.n / 2.0)


def bootstrap_output_noise_std_log2(params: TFHEParams) -> float:
    """Predicted stddev (log2, torus units) of a bootstrapped ciphertext."""
    v = key_switch_noise_variance(params, blind_rotation_noise_variance(params))
    return 0.5 * math.log2(max(v, 1e-300))


def max_noise_for_message_modulus(p: int) -> float:
    """Largest tolerable |phase error| (torus units) for correct decoding.

    Decoding rounds to the nearest multiple of ``1/p``; the error budget is
    half a step.
    """
    return 1.0 / (2.0 * p)


def _centered_torus_error(phase: np.ndarray, expected: np.ndarray) -> np.ndarray:
    """Centered distance on the torus between observed and expected numerators."""
    diff = (np.asarray(phase, np.uint32).astype(np.int64)
            - np.asarray(expected, np.uint32).astype(np.int64))
    return to_signed(to_torus(diff)) / _Q


def measure_lwe_noise(ct: LweCiphertext, key: LweSecretKey, expected_torus: int) -> float:
    """Observed phase error of an LWE ciphertext, in torus units."""
    phase = lwe_decrypt_phase(ct, key)
    return float(_centered_torus_error(np.asarray(phase), np.asarray(expected_torus))[()])


def measure_glwe_noise(ct: GlweCiphertext, key: GlweSecretKey, expected_poly: np.ndarray) -> np.ndarray:
    """Observed per-coefficient phase error of a GLWE ciphertext."""
    phase = glwe_decrypt_phase(ct, key)
    return _centered_torus_error(phase, expected_poly)
