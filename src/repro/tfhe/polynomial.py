"""Negacyclic torus-polynomial ring operations.

GLWE/GGSW ciphertexts are vectors/matrices of polynomials in
``T_q[X]/(X^N + 1)``.  Coefficients are torus numerators (uint32); the ring
is negacyclic: ``X^N = -1``.  This module implements the ring ops used by
the scheme:

- wrapping add/sub/neg,
- monomial multiplication ``X^t * p`` (the rotation at the heart of blind
  rotation; ``t`` ranges over ``Z_{2N}`` and wrapping past ``N`` flips
  signs),
- full polynomial multiplication with two interchangeable engines:

  * ``"fft"`` - the negacyclic twisted FFT from
    :mod:`repro.transforms.negacyclic` with rounding, matching what both
    Concrete and Morphling's datapath compute (float rounding shows up as
    a tiny additive noise, exactly as in the real systems);
  * ``"exact"`` - int64 schoolbook negacyclic convolution, exact whenever
    one operand is gadget-decomposed (coefficients bounded by ``beta/2``),
    which is the only place full products appear in TFHE.

Every function is batched: arrays may carry leading axes, the polynomial
axis is last.
"""

from __future__ import annotations

import numpy as np

from ..transforms.negacyclic import negacyclic_fft, negacyclic_ifft
from .torus import TORUS_DTYPE, to_torus

__all__ = [
    "zeros",
    "poly_add",
    "poly_sub",
    "poly_neg",
    "monomial_mul",
    "monomial_rotate_batch",
    "poly_mul",
    "poly_mul_spectrum",
    "to_spectrum",
    "from_spectrum",
    "MUL_ENGINES",
]

MUL_ENGINES = ("fft", "exact", "ntt")


def zeros(shape) -> np.ndarray:
    """Zero polynomial(s) with the given shape (last axis = N)."""
    return np.zeros(shape, dtype=TORUS_DTYPE)


def poly_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Coefficient-wise wrapping addition."""
    return (np.asarray(a, TORUS_DTYPE) + np.asarray(b, TORUS_DTYPE)).astype(TORUS_DTYPE)


def poly_sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Coefficient-wise wrapping subtraction."""
    return (np.asarray(a, TORUS_DTYPE) - np.asarray(b, TORUS_DTYPE)).astype(TORUS_DTYPE)


def poly_neg(a: np.ndarray) -> np.ndarray:
    """Coefficient-wise negation."""
    return (-np.asarray(a, TORUS_DTYPE)).astype(TORUS_DTYPE)


def monomial_mul(p: np.ndarray, t: int) -> np.ndarray:
    """Multiply polynomial(s) by the monomial ``X^t`` in the negacyclic ring.

    ``t`` is taken modulo ``2N``; a shift past the degree boundary wraps
    with a sign flip (``X^N = -1``).  This is the operation the
    double-pointer rotator in the Private-A1 buffer performs (Section V-C).
    """
    p = np.asarray(p, dtype=TORUS_DTYPE)
    n = p.shape[-1]
    t = int(t) % (2 * n)
    negate_all = t >= n
    shift = t % n
    if shift == 0:
        out = p.copy()
    else:
        rolled = np.roll(p, shift, axis=-1)
        rolled[..., :shift] = (-rolled[..., :shift].astype(np.int64)).astype(TORUS_DTYPE)
        out = rolled
    if negate_all:
        out = (-out.astype(np.int64)).astype(TORUS_DTYPE)
    return out


def monomial_rotate_batch(p: np.ndarray, t: np.ndarray) -> np.ndarray:
    """Per-row monomial multiply ``X^{t} * p`` with a vector of exponents.

    ``p`` has shape ``(..., N)``; ``t`` is an integer array broadcastable
    to ``p.shape[:-1]`` with entries taken modulo ``2N``.  One gather per
    coefficient replaces the roll-and-negate of :func:`monomial_mul`:
    ``out[..., j] = s * p[..., (j - t) mod N]`` with ``s = -1`` exactly
    when ``(j - t) mod 2N >= N`` (the ``X^N = -1`` wraparound).  This is
    the batched double-pointer rotator: every VPE row reads the same
    accumulator layout at its own offset.
    """
    p = np.asarray(p, dtype=TORUS_DTYPE)
    n = p.shape[-1]
    t = np.broadcast_to(np.asarray(t, dtype=np.int64), p.shape[:-1])
    idx = (np.arange(n, dtype=np.int64) - t[..., None]) % (2 * n)
    wrapped = idx >= n
    idx -= wrapped * n
    out = np.take_along_axis(p, idx, axis=-1)
    np.negative(out, out=out, where=wrapped)
    return out


def _centered_int64(p: np.ndarray) -> np.ndarray:
    """Lift uint32 coefficients to centered int64 representatives."""
    return np.asarray(p, TORUS_DTYPE).astype(np.int32).astype(np.int64)


def _exact_negacyclic_int64(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact int64 negacyclic convolution for batched operands.

    Safe when ``max|a| * max|b| * N < 2**62``; callers guarantee ``a`` is a
    small decomposed operand.  Vectorized over leading axes by building the
    full linear convolution with einsum-free shifting.
    """
    n = a.shape[-1]
    out = np.zeros(np.broadcast_shapes(a.shape, b.shape), dtype=np.int64)
    a64 = np.asarray(a, dtype=np.int64)
    b64 = np.asarray(b, dtype=np.int64)
    # result[j] = sum_{i<=j} a[i] b[j-i] - sum_{i>j} a[i] b[N+j-i]
    for i in range(n):
        ai = a64[..., i : i + 1]
        if i == 0:
            out += ai * b64
            continue
        out[..., i:] += ai * b64[..., :-i]
        out[..., :i] -= ai * b64[..., n - i :]
    return out


def poly_mul(a_signed: np.ndarray, b_torus: np.ndarray, engine: str = "fft") -> np.ndarray:
    """Negacyclic product of a small signed-integer polynomial and a torus polynomial.

    ``a_signed`` holds small centered integers (gadget-decomposed digits);
    ``b_torus`` holds uint32 torus numerators.  Returns uint32 numerators.
    """
    if engine not in MUL_ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {MUL_ENGINES}")
    a = np.asarray(a_signed, dtype=np.int64)
    b = _centered_int64(b_torus)
    if engine == "exact":
        return to_torus(_exact_negacyclic_int64(a, b))
    if engine == "ntt":
        from ..transforms.ntt import negacyclic_ntt_multiply

        broadcast = np.broadcast_shapes(a.shape, b.shape)
        a_b = np.broadcast_to(a, broadcast).reshape(-1, broadcast[-1])
        b_b = np.broadcast_to(b, broadcast).reshape(-1, broadcast[-1])
        rows = [negacyclic_ntt_multiply(x, y) for x, y in zip(a_b, b_b)]
        return to_torus(np.stack(rows).reshape(broadcast))
    prod = negacyclic_ifft(
        # repro: allow[RPR002] declared FFT boundary: the "fft" engine models the
        # float datapath (rounding appears as additive noise, as in hardware)
        negacyclic_fft(a.astype(np.float64)) * negacyclic_fft(b.astype(np.float64)),
        a.shape[-1],
    )
    return to_torus(np.round(prod).astype(np.int64))


def to_spectrum(p_signed: np.ndarray) -> np.ndarray:
    """Forward negacyclic transform of centered integer coefficients."""
    return negacyclic_fft(np.asarray(p_signed, dtype=np.float64))


def from_spectrum(spectrum: np.ndarray, n: int) -> np.ndarray:
    """Round an accumulated spectrum back to torus numerators."""
    coeffs = negacyclic_ifft(spectrum, n)
    return to_torus(np.round(coeffs).astype(np.int64))


def poly_mul_spectrum(a_spec: np.ndarray, b_spec: np.ndarray) -> np.ndarray:
    """Pointwise transform-domain product (what one VPE computes per cycle)."""
    return a_spec * b_spec
