"""Boolean circuits over TFHE gates, with scheduler workload extraction.

TFHE's gate bootstrapping makes any boolean circuit evaluable: every
2-input gate costs one programmable bootstrap, NOT is linear (free).
``Circuit`` is a small DAG builder with three consumers:

- :meth:`Circuit.evaluate_plain` - golden-model evaluation on bits;
- :meth:`Circuit.evaluate_encrypted` - the same circuit on ciphertexts
  through a :class:`~repro.tfhe.ops.TfheContext`;
- :meth:`Circuit.to_workload` - lower the circuit's topological levels
  into scheduler :class:`~repro.core.scheduler.LayerDemand` layers, so
  any circuit can be costed on the Morphling performance model.

Builders for ripple-carry adders, equality and less-than comparators,
and multiplexers cover the structures the paper's applications need.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..observability import NOISE as _NOISE
from .ops import GATE_LUTS, TfheContext

__all__ = ["Wire", "Circuit", "ripple_carry_adder", "equality_comparator", "less_than_comparator", "multiplexer"]

_BINARY_GATES = set(GATE_LUTS)


@dataclass(frozen=True)
class Wire:
    """A value in the circuit DAG (input, constant, or gate output)."""

    node_id: int


@dataclass
class _Node:
    kind: str  # "input" | "const" | "gate" | "not"
    operands: tuple = ()
    op: str = None
    name: str = None
    value: int = None  # constants only


class Circuit:
    """A combinational boolean circuit."""

    def __init__(self):
        self._nodes = []
        self._outputs = {}

    # -- construction -----------------------------------------------------
    def _add(self, node: _Node) -> Wire:
        self._nodes.append(node)
        return Wire(len(self._nodes) - 1)

    def add_input(self, name: str) -> Wire:
        """Declare a named input bit."""
        if name in self.input_names():
            raise ValueError(f"duplicate input name {name!r}")
        return self._add(_Node("input", name=name))

    def add_const(self, value: int) -> Wire:
        """A constant bit (trivial ciphertext at evaluation time)."""
        if value not in (0, 1):
            raise ValueError("constants must be bits")
        return self._add(_Node("const", value=value))

    def gate(self, op: str, a: Wire, b: Wire) -> Wire:
        """A 2-input gate (one bootstrap when evaluated encrypted)."""
        if op not in _BINARY_GATES:
            raise ValueError(f"unknown gate {op!r}; known: {sorted(_BINARY_GATES)}")
        self._check(a)
        self._check(b)
        return self._add(_Node("gate", operands=(a.node_id, b.node_id), op=op))

    def not_gate(self, a: Wire) -> Wire:
        """NOT is linear in TFHE: no bootstrap."""
        self._check(a)
        return self._add(_Node("not", operands=(a.node_id,)))

    def mark_output(self, wire: Wire, name: str) -> None:
        self._check(wire)
        if name in self._outputs:
            raise ValueError(f"duplicate output name {name!r}")
        self._outputs[name] = wire.node_id

    def _check(self, wire: Wire) -> None:
        if not 0 <= wire.node_id < len(self._nodes):
            raise ValueError("wire does not belong to this circuit")

    # -- introspection ------------------------------------------------------
    def input_names(self) -> list:
        return [n.name for n in self._nodes if n.kind == "input"]

    def output_names(self) -> list:
        return list(self._outputs)

    def gate_count(self) -> int:
        """Bootstrapped (2-input) gates in the circuit."""
        return sum(1 for n in self._nodes if n.kind == "gate")

    def levels(self) -> list:
        """Topological levels of bootstrapped gates (NOTs fold into wires).

        Level ``i`` holds the gate node-ids whose longest gate-depth from
        any input is ``i`` - gates within a level are independent, which
        is what the SW-scheduler parallelizes.
        """
        depth = {}
        out = {}
        for node_id, node in enumerate(self._nodes):
            if node.kind in ("input", "const"):
                depth[node_id] = 0
            elif node.kind == "not":
                depth[node_id] = depth[node.operands[0]]
            else:
                d = 1 + max(depth[o] for o in node.operands)
                depth[node_id] = d
                out.setdefault(d, []).append(node_id)
        return [out[d] for d in sorted(out)]

    def to_workload(self, name: str = "circuit"):
        """Lower into scheduler layers: one layer per gate level."""
        from ..apps.workload import Workload
        from ..core.scheduler import LayerDemand

        layers = [
            LayerDemand(f"{name}-level{i}", bootstraps=len(level))
            for i, level in enumerate(self.levels())
        ]
        if not layers:
            layers = [LayerDemand(f"{name}-linear", bootstraps=0)]
        return Workload(name, tuple(layers),
                        description=f"boolean circuit, {self.gate_count()} gates")

    # -- evaluation ----------------------------------------------------------
    def evaluate_plain(self, inputs: dict) -> dict:
        """Golden model: evaluate on plaintext bits."""
        values = {}
        for node_id, node in enumerate(self._nodes):
            if node.kind == "input":
                try:
                    values[node_id] = int(inputs[node.name]) & 1
                except KeyError:
                    raise KeyError(f"missing input {node.name!r}") from None
            elif node.kind == "const":
                values[node_id] = node.value
            elif node.kind == "not":
                values[node_id] = 1 - values[node.operands[0]]
            else:
                a, b = (values[o] for o in node.operands)
                values[node_id] = GATE_LUTS[node.op](a + b)
        return {name: values[nid] for name, nid in self._outputs.items()}

    def evaluate_encrypted(self, ctx: TfheContext, inputs: dict) -> dict:
        """Evaluate on ciphertexts; inputs map names to bit ciphertexts.

        Gates are evaluated level by level: every gate within a
        topological level is independent, so one level becomes a single
        batched bootstrap sharing each BSK row - the SW-scheduler
        parallelism executed for real.  Linear nodes (inputs, constants,
        NOTs) resolve between levels.  Bit-identical to the node-by-node
        evaluation.
        """
        from .lwe import lwe_trivial
        from .torus import encode_message

        values = {}

        def _annotate(node_id: int) -> None:
            if _NOISE.enabled:
                # Tie the provenance record back to the circuit DAG so the
                # noise waterfall reads in circuit terms, not op soup.
                record = _NOISE.record_of(values[node_id])
                if record is not None:
                    record.meta.setdefault("circuit_node", node_id)

        def _eval_linear(node_id: int, node: _Node) -> None:
            if node.kind == "input":
                try:
                    values[node_id] = inputs[node.name]
                except KeyError:
                    raise KeyError(f"missing input {node.name!r}") from None
            elif node.kind == "const":
                enc = int(encode_message(node.value, 8, ctx.params.q_bits)[()])
                values[node_id] = lwe_trivial(enc, ctx.params.n)
            else:  # "not"
                values[node_id] = ctx.lwe_not(values[node.operands[0]])
            _annotate(node_id)

        depth = {}
        by_depth = {}
        for node_id, node in enumerate(self._nodes):
            if node.kind in ("input", "const"):
                d = 0
            elif node.kind == "not":
                d = depth[node.operands[0]]
            else:
                d = 1 + max(depth[o] for o in node.operands)
            depth[node_id] = d
            by_depth.setdefault(d, []).append(node_id)

        for d in sorted(by_depth):
            gate_ids = [nid for nid in by_depth[d]
                        if self._nodes[nid].kind == "gate"]
            if gate_ids:
                names = [self._nodes[nid].op for nid in gate_ids]
                ops_a = [values[self._nodes[nid].operands[0]] for nid in gate_ids]
                ops_b = [values[self._nodes[nid].operands[1]] for nid in gate_ids]
                for nid, out in zip(gate_ids, ctx.gate_batch(names, ops_a, ops_b)):
                    values[nid] = out
                    _annotate(nid)
            # Linear nodes in construction order: operands always precede.
            for nid in by_depth[d]:
                if self._nodes[nid].kind != "gate":
                    _eval_linear(nid, self._nodes[nid])
        return {name: values[nid] for name, nid in self._outputs.items()}


# ---------------------------------------------------------------------------
# Standard circuit builders
# ---------------------------------------------------------------------------
def ripple_carry_adder(circuit: Circuit, a_bits: list, b_bits: list) -> tuple:
    """Add two little-endian bit vectors; returns (sum_bits, carry_out)."""
    if len(a_bits) != len(b_bits):
        raise ValueError("operand widths differ")
    carry = None
    sums = []
    for a, b in zip(a_bits, b_bits):
        axb = circuit.gate("xor", a, b)
        if carry is None:
            sums.append(axb)
            carry = circuit.gate("and", a, b)
        else:
            sums.append(circuit.gate("xor", axb, carry))
            prop = circuit.gate("and", axb, carry)
            gen = circuit.gate("and", a, b)
            carry = circuit.gate("or", prop, gen)
    return sums, carry


def equality_comparator(circuit: Circuit, a_bits: list, b_bits: list) -> Wire:
    """1 iff the two bit vectors are equal."""
    if len(a_bits) != len(b_bits):
        raise ValueError("operand widths differ")
    acc = None
    for a, b in zip(a_bits, b_bits):
        eq = circuit.gate("xnor", a, b)
        acc = eq if acc is None else circuit.gate("and", acc, eq)
    if acc is None:
        raise ValueError("comparator needs at least one bit")
    return acc


def less_than_comparator(circuit: Circuit, a_bits: list, b_bits: list) -> Wire:
    """1 iff a < b (unsigned, little-endian bit vectors)."""
    if len(a_bits) != len(b_bits):
        raise ValueError("operand widths differ")
    if not a_bits:
        raise ValueError("comparator needs at least one bit")
    lt = None
    for a, b in zip(a_bits, b_bits):  # LSB to MSB
        not_a = circuit.not_gate(a)
        bit_lt = circuit.gate("and", not_a, b)
        if lt is None:
            lt = bit_lt
        else:
            eq = circuit.gate("xnor", a, b)
            keep = circuit.gate("and", eq, lt)
            lt = circuit.gate("or", bit_lt, keep)
    return lt


def multiplexer(circuit: Circuit, select: Wire, when0: Wire, when1: Wire) -> Wire:
    """``when1`` if select else ``when0``."""
    take1 = circuit.gate("and", select, when1)
    take0 = circuit.gate("and", circuit.not_gate(select), when0)
    return circuit.gate("or", take0, take1)
