"""Packing key switch: many LWE ciphertexts into one GLWE ciphertext.

The dual of sample extraction: given LWE encryptions of scalars
``m_0..m_{t-1}`` under the small key, produce a GLWE encryption of the
polynomial ``sum_h m_h X^h`` under the GLWE key.  This is the standard
LWE-to-GLWE packing key switch of the TFHE toolbox - it lets linear
layers run polynomial-wise (one negacyclic product computes a whole
dot-product diagonal) and is the gateway to the batched programmable
bootstrap variants.

Construction: a packing key-switching key holds, for every input key bit
``i`` and level ``j``, a GLWE encryption of ``s_i * q/beta^(j+1)``
(a *constant* polynomial).  Packing ciphertext ``h`` decomposes its mask
digits and accumulates ``digit * X^h * PKSK_(i,j)``; the body lands on
coefficient ``h`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .decomposition import decompose
from .glwe import GlweCiphertext, GlweSecretKey, glwe_encrypt
from .lwe import LweSecretKey
from .polynomial import monomial_mul
from .torus import TORUS_DTYPE, to_torus

__all__ = ["PackingKeySwitchingKey", "make_packing_ksk", "pack_lwes"]


@dataclass
class PackingKeySwitchingKey:
    """GLWE encryptions of ``s_i * q/beta^(j+1)`` for every (i, j).

    ``data`` has shape ``(n, l_pk, k+1, N)``.
    """

    data: np.ndarray
    beta_bits: int

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=TORUS_DTYPE)
        if self.data.ndim != 4:
            raise ValueError("packing KSK must have shape (n, l, k+1, N)")

    @property
    def in_dimension(self) -> int:
        return self.data.shape[0]

    @property
    def levels(self) -> int:
        return self.data.shape[1]

    @property
    def N(self) -> int:
        return self.data.shape[3]


def make_packing_ksk(
    lwe_key: LweSecretKey,
    glwe_key: GlweSecretKey,
    beta_bits: int,
    levels: int,
    rng: np.random.Generator,
    noise_log2: float = -25.0,
    q_bits: int = 32,
) -> PackingKeySwitchingKey:
    """Build the packing key from the small LWE key to the GLWE key."""
    if beta_bits * levels > q_bits:
        raise ValueError("decomposition exceeds the modulus width")
    n = lwe_key.n
    data = np.empty((n, levels, glwe_key.k + 1, glwe_key.N), dtype=TORUS_DTYPE)
    for i in range(n):
        for j in range(levels):
            message = np.zeros(glwe_key.N, dtype=TORUS_DTYPE)
            weight = np.int64(int(lwe_key.bits[i])) * (1 << (q_bits - beta_bits * (j + 1)))
            message[0] = to_torus(weight)[()]
            data[i, j] = glwe_encrypt(message, glwe_key, rng, noise_log2).data
    return PackingKeySwitchingKey(data, beta_bits)


def pack_lwes(
    cts: list,
    pksk: PackingKeySwitchingKey,
    k: int,
) -> GlweCiphertext:
    """Pack up to ``N`` LWE ciphertexts into one GLWE ciphertext.

    Ciphertext ``h`` lands on coefficient ``h`` of the packed message
    polynomial.  ``k`` is the GLWE dimension of the output.
    """
    if not cts:
        raise ValueError("nothing to pack")
    n_dim = cts[0].n
    if n_dim != pksk.in_dimension:
        raise ValueError("LWE dimension does not match the packing key")
    N = pksk.N
    if len(cts) > N:
        raise ValueError(f"cannot pack {len(cts)} ciphertexts into degree {N}")
    acc = np.zeros((k + 1, N), dtype=np.int64)
    for h, ct in enumerate(cts):
        if ct.n != n_dim:
            raise ValueError("mixed LWE dimensions")
        # Body contribution: b_h * X^h on the output body row.
        body_poly = np.zeros(N, dtype=TORUS_DTYPE)
        body_poly[0] = ct.b
        acc[k] += monomial_mul(body_poly, h).astype(np.int64)
        # Mask contribution: -sum_i sum_j digit_(i,j) * X^h * PKSK_(i,j).
        digits = decompose(ct.a[None, :], pksk.beta_bits, pksk.levels)[0]  # (l, n)
        for j in range(pksk.levels):
            for i in np.nonzero(digits[j])[0]:
                d = int(digits[j, i])
                rotated = monomial_mul(pksk.data[i, j], h)
                acc -= d * rotated.astype(np.int32).astype(np.int64)
    return GlweCiphertext(to_torus(acc))
