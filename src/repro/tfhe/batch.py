"""Batched LWE ciphertexts: the accelerator's native granularity.

Morphling never bootstraps one ciphertext - the scheduler groups 64 LWE
ciphertexts and streams them through 16 bootstrap cores (Section V-E).
``LweBatch`` gives the substrate the same shape: a ``(B, n)`` mask matrix
plus a ``(B,)`` body vector with fully vectorized encryption, decryption
and linear homomorphisms, and a batched bootstrap driver that mirrors the
hardware's grouping (and reports how the scheduler would split it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import Optional

from .bootstrap import BootstrapTrace, programmable_bootstrap, programmable_bootstrap_batch
from .keys import KeySet
from .lwe import LweCiphertext, LweSecretKey, gaussian_torus_noise
from .torus import (
    TORUS_DTYPE,
    decode_message,
    encode_message,
    to_torus,
    torus_dot,
    torus_scalar_mul,
)

__all__ = ["LweBatch", "encrypt_batch", "decrypt_batch", "bootstrap_batch"]


@dataclass
class LweBatch:
    """A batch of LWE ciphertexts under one key."""

    a: np.ndarray  # (B, n) uint32
    b: np.ndarray  # (B,) uint32

    def __post_init__(self) -> None:
        self.a = np.asarray(self.a, dtype=TORUS_DTYPE)
        self.b = np.asarray(self.b, dtype=TORUS_DTYPE)
        if self.a.ndim != 2 or self.b.shape != (self.a.shape[0],):
            raise ValueError("batch needs a (B, n) mask and (B,) body")

    # -- container ------------------------------------------------------
    @property
    def size(self) -> int:
        return self.a.shape[0]

    @property
    def n(self) -> int:
        return self.a.shape[1]

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, index: int) -> LweCiphertext:
        return LweCiphertext(self.a[index].copy(), self.b[index])

    @classmethod
    def from_ciphertexts(cls, cts: list) -> "LweBatch":
        if not cts:
            raise ValueError("cannot build an empty batch")
        n = cts[0].n
        if any(ct.n != n for ct in cts):
            raise ValueError("mixed LWE dimensions in batch")
        return cls(np.stack([ct.a for ct in cts]), np.array([ct.b for ct in cts]))

    def to_ciphertexts(self) -> list:
        return [self[i] for i in range(self.size)]

    # -- linear homomorphisms --------------------------------------------
    def __add__(self, other: "LweBatch") -> "LweBatch":
        if self.a.shape != other.a.shape:
            raise ValueError("batch shapes differ")
        return LweBatch(self.a + other.a, self.b + other.b)

    def __sub__(self, other: "LweBatch") -> "LweBatch":
        if self.a.shape != other.a.shape:
            raise ValueError("batch shapes differ")
        return LweBatch(self.a - other.a, self.b - other.b)

    def __neg__(self) -> "LweBatch":
        return LweBatch(
            (-self.a.astype(np.int64)).astype(TORUS_DTYPE),
            (-self.b.astype(np.int64)).astype(TORUS_DTYPE),
        )

    def scalar_mul(self, scalars) -> "LweBatch":
        """Per-ciphertext plaintext scalar multiplication."""
        s = np.asarray(scalars, dtype=np.int64)
        if s.ndim == 0:
            s = np.full(self.size, int(s), dtype=np.int64)
        if s.shape != (self.size,):
            raise ValueError("need one scalar per ciphertext")
        return LweBatch(
            torus_scalar_mul(s[:, None], self.a),
            torus_scalar_mul(s, self.b),
        )

    def add_plain(self, torus_values) -> "LweBatch":
        """Add plaintext torus numerators to the bodies."""
        t = to_torus(np.asarray(torus_values, dtype=np.int64))
        return LweBatch(self.a.copy(), self.b + np.broadcast_to(t, self.b.shape))


def encrypt_batch(
    messages,
    p: int,
    key: LweSecretKey,
    rng: np.random.Generator,
    noise_log2: float = -15.0,
) -> LweBatch:
    """Vectorized encryption of ``messages`` in ``Z_p``."""
    msgs = np.asarray(messages, dtype=np.int64)
    if msgs.ndim != 1:
        raise ValueError("messages must be a 1-D sequence")
    size = msgs.shape[0]
    a = rng.integers(0, 1 << 32, size=(size, key.n), dtype=np.uint64).astype(TORUS_DTYPE)
    e = gaussian_torus_noise(rng, noise_log2, shape=(size,))
    mask_dot = torus_dot(a, key.bits[None, :])
    b = mask_dot + encode_message(msgs, p) + e
    return LweBatch(a, b.astype(TORUS_DTYPE))


def decrypt_batch(batch: LweBatch, p: int, key: LweSecretKey) -> np.ndarray:
    """Vectorized decryption back to ``Z_p``."""
    mask_dot = torus_dot(batch.a, key.bits[None, :])
    phases = (batch.b - mask_dot).astype(TORUS_DTYPE)
    return decode_message(phases, p)


def bootstrap_batch(
    batch: LweBatch,
    test_poly: np.ndarray,
    keyset: KeySet,
    group_size: int = 64,
    engine: str = "transform",
    trace: Optional[BootstrapTrace] = None,
) -> LweBatch:
    """Bootstrap every ciphertext, processed in scheduler-shaped groups.

    Each group runs through the vectorized
    :func:`~repro.tfhe.bootstrap.programmable_bootstrap_batch` kernel
    (one BSK pass shared by the whole group, mirroring how the HW
    scheduler streams 64 LWE ciphertexts through the VPE rows).  Results
    are bit-identical for every ``group_size``.  The reference engines
    (``"fft"``/``"exact"``) keep the per-sample path.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    outputs = []
    for start in range(0, batch.size, group_size):
        group = [batch[i] for i in range(start, min(start + group_size, batch.size))]
        if engine == "transform":
            outputs.extend(
                programmable_bootstrap_batch(group, test_poly, keyset, trace=trace)
            )
        else:
            outputs.extend(
                programmable_bootstrap(ct, test_poly, keyset, engine=engine, trace=trace)
                for ct in group
            )
    return LweBatch.from_ciphertexts(outputs)
