"""GLWE ciphertexts: polynomial-message encryption.

A GLWE ciphertext of ``M(x)`` under ``S = (S_1..S_k)`` (binary polynomials)
is ``(A_1..A_k, B)`` with ``B = sum A_i * S_i + M + E`` in the negacyclic
ring (Section II-A).  We store the ``k`` masks and the body in one
``(k+1, N)`` uint32 array - the paper's ACC ciphertext layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .lwe import LweCiphertext, gaussian_torus_noise
from .polynomial import monomial_mul, poly_add, poly_sub
from .torus import TORUS_DTYPE, to_torus

__all__ = [
    "GlweSecretKey",
    "GlweCiphertext",
    "glwe_keygen",
    "glwe_encrypt",
    "glwe_decrypt_phase",
    "glwe_trivial",
    "glwe_add",
    "glwe_sub",
    "glwe_rotate",
    "sample_extract",
]


@dataclass(frozen=True)
class GlweSecretKey:
    """GLWE secret key: ``k`` binary polynomials of size ``N``."""

    polys: np.ndarray

    def __post_init__(self) -> None:
        polys = np.asarray(self.polys)
        if polys.ndim != 2:
            raise ValueError("GLWE key must have shape (k, N)")
        if not np.all((polys == 0) | (polys == 1)):
            raise ValueError("GLWE key coefficients must be 0/1")
        object.__setattr__(self, "polys", polys.astype(np.int64))

    @property
    def k(self) -> int:
        return self.polys.shape[0]

    @property
    def N(self) -> int:
        return self.polys.shape[1]

    def extracted_lwe_bits(self) -> np.ndarray:
        """The ``k*N`` LWE key bits matching :func:`sample_extract`.

        Extracting the constant coefficient of a GLWE phase turns the
        polynomial key into a flat LWE key whose bits are the key
        coefficients in natural order.
        """
        return self.polys.reshape(-1).copy()


@dataclass
class GlweCiphertext:
    """A GLWE sample stored as a ``(k+1, N)`` array: rows 0..k-1 = masks, row k = body."""

    data: np.ndarray

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=TORUS_DTYPE)
        if self.data.ndim != 2:
            raise ValueError("GLWE ciphertext must have shape (k+1, N)")

    @property
    def k(self) -> int:
        return self.data.shape[0] - 1

    @property
    def N(self) -> int:
        return self.data.shape[1]

    @property
    def masks(self) -> np.ndarray:
        return self.data[:-1]

    @property
    def body(self) -> np.ndarray:
        return self.data[-1]

    def copy(self) -> "GlweCiphertext":
        return GlweCiphertext(self.data.copy())


def glwe_keygen(k: int, N: int, rng: np.random.Generator) -> GlweSecretKey:
    """Sample ``k`` uniform binary key polynomials."""
    return GlweSecretKey(rng.integers(0, 2, size=(k, N), dtype=np.int64))


def _key_mask_product(masks: np.ndarray, key: GlweSecretKey) -> np.ndarray:
    """Exact ``sum_i A_i * S_i`` with binary ``S_i`` (int64, negacyclic)."""
    n = masks.shape[-1]
    acc = np.zeros(n, dtype=np.int64)
    centered = masks.astype(np.int64)
    for i in range(key.k):
        s = key.polys[i]
        ones = np.nonzero(s)[0]
        a = centered[i]
        for j in ones:
            acc += np.concatenate((-a[n - j:], a[: n - j])) if j else a
    return acc


def glwe_encrypt(
    m_poly: np.ndarray,
    key: GlweSecretKey,
    rng: np.random.Generator,
    noise_log2: float = -25.0,
) -> GlweCiphertext:
    """Encrypt a torus polynomial (uint32 numerators of length N)."""
    m = np.asarray(m_poly, dtype=TORUS_DTYPE)
    if m.shape != (key.N,):
        raise ValueError(f"message must have shape ({key.N},)")
    data = np.empty((key.k + 1, key.N), dtype=TORUS_DTYPE)
    data[:-1] = rng.integers(0, 1 << 32, size=(key.k, key.N), dtype=np.uint64).astype(TORUS_DTYPE)
    e = gaussian_torus_noise(rng, noise_log2, shape=(key.N,))
    data[-1] = to_torus(_key_mask_product(data[:-1], key)) + m + e
    return GlweCiphertext(data)


def glwe_decrypt_phase(ct: GlweCiphertext, key: GlweSecretKey) -> np.ndarray:
    """Noisy phase ``B - sum A_i S_i`` (message polynomial + noise)."""
    return (ct.body.astype(np.int64) - _key_mask_product(ct.masks, key)).astype(TORUS_DTYPE)


def glwe_trivial(m_poly: np.ndarray, k: int) -> GlweCiphertext:
    """Noiseless, keyless GLWE encryption (masks = 0)."""
    m = np.asarray(m_poly, dtype=TORUS_DTYPE)
    data = np.zeros((k + 1, m.shape[-1]), dtype=TORUS_DTYPE)
    data[-1] = m
    return GlweCiphertext(data)


def glwe_add(x: GlweCiphertext, y: GlweCiphertext) -> GlweCiphertext:
    """Homomorphic addition."""
    return GlweCiphertext(poly_add(x.data, y.data))


def glwe_sub(x: GlweCiphertext, y: GlweCiphertext) -> GlweCiphertext:
    """Homomorphic subtraction."""
    return GlweCiphertext(poly_sub(x.data, y.data))


def glwe_rotate(ct: GlweCiphertext, t: int) -> GlweCiphertext:
    """Multiply every component polynomial by ``X^t`` (blind-rotation step)."""
    return GlweCiphertext(monomial_mul(ct.data, t))


def sample_extract(ct: GlweCiphertext, coefficient: int = 0) -> LweCiphertext:
    """Extract the LWE encryption of one message coefficient (Algorithm 1, SE).

    Pure data re-grouping: coefficient ``h`` of the phase polynomial equals
    an LWE sample under the flattened key
    :meth:`GlweSecretKey.extracted_lwe_bits`.
    """
    k, n = ct.k, ct.N
    if not 0 <= coefficient < n:
        raise ValueError(f"coefficient index out of range: {coefficient}")
    h = coefficient
    a = np.empty((k, n), dtype=np.int64)
    masks = ct.masks.astype(np.int64)
    for i in range(k):
        # a'_{i,j} = A_i[h-j] for j <= h, and -A_i[N+h-j] for j > h.
        rolled = np.concatenate((masks[i, h::-1], -masks[i, :h:-1]))
        a[i] = rolled
    return LweCiphertext(to_torus(a.reshape(-1)), ct.body[h])
