"""GLWE ciphertexts: polynomial-message encryption.

A GLWE ciphertext of ``M(x)`` under ``S = (S_1..S_k)`` (binary polynomials)
is ``(A_1..A_k, B)`` with ``B = sum A_i * S_i + M + E`` in the negacyclic
ring (Section II-A).  We store the ``k`` masks and the body in one
``(k+1, N)`` uint32 array - the paper's ACC ciphertext layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .lwe import LweCiphertext, gaussian_torus_noise
from .polynomial import monomial_mul, poly_add, poly_sub
from .torus import TORUS_DTYPE, to_torus

__all__ = [
    "GlweSecretKey",
    "GlweCiphertext",
    "glwe_keygen",
    "glwe_encrypt",
    "glwe_decrypt_phase",
    "glwe_trivial",
    "glwe_add",
    "glwe_sub",
    "glwe_rotate",
    "sample_extract",
    "sample_extract_batch",
]


@dataclass(frozen=True)
class GlweSecretKey:
    """GLWE secret key: ``k`` binary polynomials of size ``N``."""

    polys: np.ndarray

    def __post_init__(self) -> None:
        polys = np.asarray(self.polys)
        if polys.ndim != 2:
            raise ValueError("GLWE key must have shape (k, N)")
        if not np.all((polys == 0) | (polys == 1)):
            raise ValueError("GLWE key coefficients must be 0/1")
        object.__setattr__(self, "polys", polys.astype(np.int64))

    @property
    def k(self) -> int:
        return self.polys.shape[0]

    @property
    def N(self) -> int:
        return self.polys.shape[1]

    def extracted_lwe_bits(self) -> np.ndarray:
        """The ``k*N`` LWE key bits matching :func:`sample_extract`.

        Extracting the constant coefficient of a GLWE phase turns the
        polynomial key into a flat LWE key whose bits are the key
        coefficients in natural order.
        """
        return self.polys.reshape(-1).copy()


@dataclass
class GlweCiphertext:
    """A GLWE sample stored as a ``(k+1, N)`` array: rows 0..k-1 = masks, row k = body."""

    data: np.ndarray

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=TORUS_DTYPE)
        if self.data.ndim != 2:
            raise ValueError("GLWE ciphertext must have shape (k+1, N)")

    @property
    def k(self) -> int:
        return self.data.shape[0] - 1

    @property
    def N(self) -> int:
        return self.data.shape[1]

    @property
    def masks(self) -> np.ndarray:
        return self.data[:-1]

    @property
    def body(self) -> np.ndarray:
        return self.data[-1]

    def copy(self) -> "GlweCiphertext":
        return GlweCiphertext(self.data.copy())


def glwe_keygen(k: int, N: int, rng: np.random.Generator) -> GlweSecretKey:
    """Sample ``k`` uniform binary key polynomials."""
    return GlweSecretKey(rng.integers(0, 2, size=(k, N), dtype=np.int64))


def _key_mask_product(masks: np.ndarray, key: GlweSecretKey) -> np.ndarray:
    """Exact ``sum_i A_i * S_i`` with binary ``S_i`` (int64, negacyclic).

    Vectorized over the key's one-bits: the negacyclic shift by ``j`` is
    the window ``[n-j, 2n-j)`` of ``concat(-a, a)``, so all shifts of one
    mask become a single gather + sum.  Bit-identical to the per-shift
    loop (exact integer sums in a different order).
    """
    n = masks.shape[-1]
    acc = np.zeros(n, dtype=np.int64)
    a64 = masks.astype(np.int64)
    base = np.arange(n, dtype=np.int64)
    for i in range(key.k):
        ones = np.nonzero(key.polys[i])[0]
        if ones.size == 0:
            continue
        ext = np.concatenate((-a64[i], a64[i]))
        idx = (n - ones)[:, None] + base[None, :]
        acc += ext[idx].sum(axis=0)
    return acc


def glwe_encrypt(
    m_poly: np.ndarray,
    key: GlweSecretKey,
    rng: np.random.Generator,
    noise_log2: float = -25.0,
) -> GlweCiphertext:
    """Encrypt a torus polynomial (uint32 numerators of length N)."""
    m = np.asarray(m_poly, dtype=TORUS_DTYPE)
    if m.shape != (key.N,):
        raise ValueError(f"message must have shape ({key.N},)")
    data = np.empty((key.k + 1, key.N), dtype=TORUS_DTYPE)
    data[:-1] = rng.integers(0, 1 << 32, size=(key.k, key.N), dtype=np.uint64).astype(TORUS_DTYPE)
    e = gaussian_torus_noise(rng, noise_log2, shape=(key.N,))
    data[-1] = to_torus(_key_mask_product(data[:-1], key)) + m + e
    return GlweCiphertext(data)


def glwe_decrypt_phase(ct: GlweCiphertext, key: GlweSecretKey) -> np.ndarray:
    """Noisy phase ``B - sum A_i S_i`` (message polynomial + noise)."""
    return (ct.body.astype(np.int64) - _key_mask_product(ct.masks, key)).astype(TORUS_DTYPE)


def glwe_trivial(m_poly: np.ndarray, k: int) -> GlweCiphertext:
    """Noiseless, keyless GLWE encryption (masks = 0)."""
    m = np.asarray(m_poly, dtype=TORUS_DTYPE)
    data = np.zeros((k + 1, m.shape[-1]), dtype=TORUS_DTYPE)
    data[-1] = m
    return GlweCiphertext(data)


def glwe_add(x: GlweCiphertext, y: GlweCiphertext) -> GlweCiphertext:
    """Homomorphic addition."""
    return GlweCiphertext(poly_add(x.data, y.data))


def glwe_sub(x: GlweCiphertext, y: GlweCiphertext) -> GlweCiphertext:
    """Homomorphic subtraction."""
    return GlweCiphertext(poly_sub(x.data, y.data))


def glwe_rotate(ct: GlweCiphertext, t: int) -> GlweCiphertext:
    """Multiply every component polynomial by ``X^t`` (blind-rotation step)."""
    return GlweCiphertext(monomial_mul(ct.data, t))


def sample_extract(ct: GlweCiphertext, coefficient: int = 0) -> LweCiphertext:
    """Extract the LWE encryption of one message coefficient (Algorithm 1, SE).

    Pure data re-grouping: coefficient ``h`` of the phase polynomial equals
    an LWE sample under the flattened key
    :meth:`GlweSecretKey.extracted_lwe_bits`.
    """
    k, n = ct.k, ct.N
    if not 0 <= coefficient < n:
        raise ValueError(f"coefficient index out of range: {coefficient}")
    h = coefficient
    a = np.empty((k, n), dtype=np.int64)
    masks = ct.masks.astype(np.int64)
    for i in range(k):
        # a'_{i,j} = A_i[h-j] for j <= h, and -A_i[N+h-j] for j > h.
        rolled = np.concatenate((masks[i, h::-1], -masks[i, :h:-1]))
        a[i] = rolled
    return LweCiphertext(to_torus(a.reshape(-1)), ct.body[h])


def sample_extract_batch(acc_data: np.ndarray) -> tuple:
    """Constant-coefficient sample extraction for a batch of accumulators.

    ``acc_data`` holds ``B`` GLWE samples as a ``(B, k+1, N)`` torus
    array.  Returns ``(a, b)`` with ``a`` of shape ``(B, k*N)`` and ``b``
    of shape ``(B,)`` - sample ``r``'s LWE extraction at coefficient 0,
    identical to :func:`sample_extract` on each row (uint32 wraparound
    negation replaces the int64 round-trip).
    """
    acc_data = np.asarray(acc_data, dtype=TORUS_DTYPE)
    batch, kp1, n = acc_data.shape
    masks = acc_data[:, : kp1 - 1, :]
    # a'_{i,0} = A_i[0]; a'_{i,j} = -A_i[N-j] for j > 0 (negacyclic fold).
    ext = np.concatenate((masks[..., :1], np.negative(masks[..., :0:-1])), axis=-1)
    return ext.reshape(batch, (kp1 - 1) * n), acc_data[:, kp1 - 1, 0].copy()
