"""LWE ciphertexts: scalar-message encryption under a binary secret key.

An LWE ciphertext of ``m`` in ``T_q`` under ``s in {0,1}**n`` is
``(a_1..a_n, b)`` with ``b = <a, s> + m + e`` (Section II-A).  The mask and
body are uint32 torus numerators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..observability import NOISE as _NOISE
from .torus import TORUS_DTYPE, to_torus, torus_scalar_mul, u32

__all__ = [
    "LweSecretKey",
    "LweCiphertext",
    "lwe_keygen",
    "lwe_encrypt",
    "lwe_decrypt_phase",
    "lwe_trivial",
    "lwe_add",
    "lwe_sub",
    "lwe_neg",
    "lwe_scalar_mul",
    "lwe_add_plain",
    "gaussian_torus_noise",
]


@dataclass(frozen=True)
class LweSecretKey:
    """Binary LWE secret key of dimension ``n``."""

    bits: np.ndarray

    def __post_init__(self) -> None:
        bits = np.asarray(self.bits)
        if bits.ndim != 1:
            raise ValueError("LWE key must be a 1-D bit vector")
        if not np.all((bits == 0) | (bits == 1)):
            raise ValueError("LWE key bits must be 0/1")
        object.__setattr__(self, "bits", bits.astype(np.int64))

    @property
    def n(self) -> int:
        return self.bits.shape[0]


@dataclass
class LweCiphertext:
    """An LWE sample ``(a, b)``; ``a`` is the mask, ``b`` the body."""

    a: np.ndarray
    b: np.uint32

    def __post_init__(self) -> None:
        self.a = np.asarray(self.a, dtype=TORUS_DTYPE)
        self.b = TORUS_DTYPE(self.b)

    @property
    def n(self) -> int:
        return self.a.shape[0]

    def copy(self) -> "LweCiphertext":
        return LweCiphertext(self.a.copy(), self.b)


def gaussian_torus_noise(rng: np.random.Generator, std_log2: float, shape=()) -> np.ndarray:
    """Sample discretized-Gaussian torus noise with stddev ``2**std_log2``.

    The stddev is expressed as a fraction of the torus, as is conventional
    for TFHE parameter sets.
    """
    std = (2.0 ** std_log2) * (1 << 32)
    return to_torus(np.round(rng.normal(0.0, std, size=shape)).astype(np.int64))


def lwe_keygen(n: int, rng: np.random.Generator) -> LweSecretKey:
    """Sample a uniform binary LWE key of dimension ``n``."""
    return LweSecretKey(rng.integers(0, 2, size=n, dtype=np.int64))


def lwe_encrypt(
    m_torus: int,
    key: LweSecretKey,
    rng: np.random.Generator,
    noise_log2: float = -15.0,
) -> LweCiphertext:
    """Encrypt a torus numerator ``m_torus`` under ``key``."""
    a = rng.integers(0, 1 << 32, size=key.n, dtype=np.uint64).astype(TORUS_DTYPE)
    e = gaussian_torus_noise(rng, noise_log2)
    mask_dot = int(np.sum(a.astype(np.uint64) * key.bits.astype(np.uint64)))
    b = u32(mask_dot + int(m_torus) + int(e))
    ct = LweCiphertext(a, b)
    if _NOISE.enabled:
        _NOISE.track(ct, "lwe_encrypt", (2.0 ** noise_log2) ** 2, int(m_torus))
    return ct


def lwe_decrypt_phase(ct: LweCiphertext, key: LweSecretKey) -> np.uint32:
    """Return the noisy phase ``b - <a, s>`` (message + noise)."""
    mask_dot = int(np.sum(ct.a.astype(np.uint64) * key.bits.astype(np.uint64)))
    return u32(int(ct.b) - mask_dot)


def lwe_trivial(m_torus: int, n: int) -> LweCiphertext:
    """Noiseless, keyless encryption of ``m_torus`` (mask = 0)."""
    ct = LweCiphertext(np.zeros(n, dtype=TORUS_DTYPE), TORUS_DTYPE(m_torus))
    if _NOISE.enabled:
        _NOISE.track(ct, "lwe_trivial", 0.0, int(m_torus))
    return ct


def lwe_add(x: LweCiphertext, y: LweCiphertext) -> LweCiphertext:
    """Homomorphic addition."""
    if x.n != y.n:
        raise ValueError("LWE dimensions differ")
    out = LweCiphertext(x.a + y.a, u32(int(x.b) + int(y.b)))
    if _NOISE.enabled:
        _NOISE.track_linear(out, "lwe_add", [(1, x), (1, y)])
    return out


def lwe_sub(x: LweCiphertext, y: LweCiphertext) -> LweCiphertext:
    """Homomorphic subtraction."""
    if x.n != y.n:
        raise ValueError("LWE dimensions differ")
    out = LweCiphertext(x.a - y.a, u32(int(x.b) - int(y.b)))
    if _NOISE.enabled:
        _NOISE.track_linear(out, "lwe_sub", [(1, x), (-1, y)])
    return out


def lwe_neg(x: LweCiphertext) -> LweCiphertext:
    """Homomorphic negation."""
    out = LweCiphertext((-x.a.astype(np.int64)).astype(TORUS_DTYPE), u32(-int(x.b)))
    if _NOISE.enabled:
        _NOISE.track_linear(out, "lwe_neg", [(-1, x)])
    return out


def lwe_scalar_mul(scalar: int, x: LweCiphertext) -> LweCiphertext:
    """Multiply by a small plaintext integer (noise grows by |scalar|)."""
    out = LweCiphertext(
        torus_scalar_mul(scalar, x.a),
        torus_scalar_mul(scalar, np.asarray(x.b))[()],
    )
    if _NOISE.enabled:
        _NOISE.track_linear(out, "lwe_scalar_mul", [(int(scalar), x)])
    return out


def lwe_add_plain(x: LweCiphertext, m_torus: int) -> LweCiphertext:
    """Add a plaintext torus numerator to the body."""
    out = LweCiphertext(x.a.copy(), u32(int(x.b) + int(m_torus)))
    if _NOISE.enabled:
        _NOISE.track_linear(out, "lwe_add_plain", [(1, x)],
                            plain_offset=int(m_torus))
    return out
