"""Noise-budget tracking and automatic bootstrap placement.

TFHE programs alternate cheap linear operations (which grow noise) with
bootstraps (which reset it).  ``NoiseBudget`` tracks the noise variance
of a ciphertext symbolically through linear ops using the same variance
algebra as :mod:`repro.tfhe.noise`; ``BootstrapPlanner`` walks a linear
program (sequence of weighted-sum ops) and inserts bootstraps exactly
where the accumulated variance would cross the decode budget - then
emits the resulting bootstrap schedule as scheduler layers, connecting
the compiler view to the accelerator model.

This is the automation behind the paper's Section II observation that
"bootstrapping is an essential operation... as its absence would
restrict the supported applications": the planner decides *where* it is
essential.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..params import TFHEParams
from .noise import (
    blind_rotation_noise_variance,
    key_switch_noise_variance,
    max_noise_for_message_modulus,
)

__all__ = ["NoiseBudget", "LinearOp", "BootstrapPlan", "BootstrapPlanner"]


@dataclass(frozen=True)
class NoiseBudget:
    """Symbolic noise state of one ciphertext (variance in torus^2 units)."""

    variance: float
    params: TFHEParams

    @classmethod
    def fresh(cls, params: TFHEParams) -> "NoiseBudget":
        """A freshly encrypted ciphertext."""
        return cls((2.0 ** params.lwe_noise_log2) ** 2, params)

    @classmethod
    def bootstrapped(cls, params: TFHEParams) -> "NoiseBudget":
        """A ciphertext straight out of a bootstrap (input-independent)."""
        v = key_switch_noise_variance(params, blind_rotation_noise_variance(params))
        return cls(v, params)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def add(self, other: "NoiseBudget") -> "NoiseBudget":
        """Ciphertext addition: variances add (independent noise)."""
        return NoiseBudget(self.variance + other.variance, self.params)

    def scalar_mul(self, scalar: int) -> "NoiseBudget":
        """Plaintext multiplication scales the noise by |scalar|."""
        return NoiseBudget(self.variance * scalar * scalar, self.params)

    def weighted_sum(self, weights: Iterable[int]) -> "NoiseBudget":
        """Dot product with plaintext weights, all operands at this level."""
        factor = sum(int(w) * int(w) for w in weights)
        return NoiseBudget(self.variance * factor, self.params)

    def decodes_at(self, p: int, sigmas: float = 4.0) -> bool:
        """True if decoding at modulus ``p`` succeeds with ``sigmas`` margin."""
        return sigmas * self.std < max_noise_for_message_modulus(p)


@dataclass(frozen=True)
class LinearOp:
    """One level of a linear program: a weighted sum of current values."""

    name: str
    weights: tuple

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("linear op needs at least one weight")


@dataclass
class BootstrapPlan:
    """Where bootstraps were inserted and what the program costs."""

    steps: List[Tuple[str, bool]]  # (op_name, bootstrapped_before)
    total_bootstraps: int
    final_budget: NoiseBudget

    def to_layers(self, values_per_level: int = 1) -> list:
        """Scheduler layers: one per bootstrap point."""
        from ..core.scheduler import LayerDemand

        layers = []
        for name, bootstrapped in self.steps:
            if bootstrapped:
                layers.append(LayerDemand(f"pbs-before-{name}",
                                          bootstraps=values_per_level))
        return layers or [LayerDemand("linear-only", bootstraps=0)]


class BootstrapPlanner:
    """Greedy bootstrap placement for a straight-line linear program."""

    def __init__(self, params: TFHEParams, p: int, sigmas: float = 4.0):
        if p < 2:
            raise ValueError("message modulus must be >= 2")
        self.params = params
        self.p = p
        self.sigmas = sigmas
        base = NoiseBudget.bootstrapped(params)
        if not base.decodes_at(p, sigmas):
            raise ValueError(
                f"parameters cannot decode p={p} even right after a bootstrap"
            )

    def plan(self, program: Sequence[LinearOp]) -> BootstrapPlan:
        """Insert bootstraps so every op's output still decodes.

        Greedy rule: try the op on the current budget; if the result
        would not decode with the configured margin, bootstrap the
        inputs first (resetting to the bootstrapped level) and retry.
        A single op too heavy even for fresh inputs is an error - it
        needs algorithmic restructuring, not scheduling.
        """
        budget = NoiseBudget.fresh(self.params)
        if not budget.decodes_at(self.p, self.sigmas):
            budget = NoiseBudget.bootstrapped(self.params)
        steps: List[Tuple[str, bool]] = []
        bootstraps = 0
        for op in program:
            candidate = budget.weighted_sum(op.weights)
            if candidate.decodes_at(self.p, self.sigmas):
                steps.append((op.name, False))
                budget = candidate
                continue
            reset = NoiseBudget.bootstrapped(self.params)
            candidate = reset.weighted_sum(op.weights)
            if not candidate.decodes_at(self.p, self.sigmas):
                raise ValueError(
                    f"op {op.name!r} exceeds the noise budget even on "
                    f"freshly bootstrapped inputs (weights {op.weights})"
                )
            steps.append((op.name, True))
            bootstraps += 1
            budget = candidate
        return BootstrapPlan(steps, bootstraps, budget)
