"""Key material: secret keys, bootstrapping key (BSK), key-switching key (KSK).

The BSK is ``n`` GGSW encryptions of the LWE key bits under the GLWE key
(Section II-A); the KSK is ``k*N x l_k`` LWE encryptions of the scaled
extracted-GLWE key bits under the original LWE key.  ``KeySet`` bundles
everything a server needs to bootstrap (no secret material beyond what the
scheme itself publishes as evaluation keys).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..params import TFHEParams
from ..transforms.negacyclic import negacyclic_fft
from .ggsw import ggsw_encrypt
from .glwe import GlweSecretKey, glwe_keygen
from .lwe import LweSecretKey, gaussian_torus_noise, lwe_keygen
from .torus import TORUS_DTYPE, to_torus, torus_dot

__all__ = ["KeySwitchingKey", "KeySet", "generate_keyset", "make_ksk"]


@dataclass
class KeySwitchingKey:
    """KSK from an input LWE key of dimension ``m`` to an output key of dimension ``n``.

    ``masks`` has shape ``(m, l_k, n)`` and ``bodies`` shape ``(m, l_k)``:
    entry ``(i, j)`` is the LWE encryption of
    ``in_bit_i * q / beta_ks**(j+1)`` under the output key.
    """

    masks: np.ndarray
    bodies: np.ndarray
    beta_ks_bits: int

    def __post_init__(self) -> None:
        self.masks = np.asarray(self.masks, dtype=TORUS_DTYPE)
        self.bodies = np.asarray(self.bodies, dtype=TORUS_DTYPE)
        if self.masks.ndim != 3 or self.bodies.shape != self.masks.shape[:2]:
            raise ValueError("inconsistent KSK shapes")

    @property
    def in_dimension(self) -> int:
        return self.masks.shape[0]

    @property
    def l_k(self) -> int:
        return self.masks.shape[1]

    @property
    def out_dimension(self) -> int:
        return self.masks.shape[2]


def make_ksk(
    in_bits: np.ndarray,
    out_key: LweSecretKey,
    beta_ks_bits: int,
    l_k: int,
    rng: np.random.Generator,
    noise_log2: float = -15.0,
    q_bits: int = 32,
) -> KeySwitchingKey:
    """Build a key-switching key from ``in_bits`` to ``out_key``."""
    in_bits = np.asarray(in_bits, dtype=np.int64)
    m = in_bits.shape[0]
    n = out_key.n
    masks = rng.integers(0, 1 << 32, size=(m, l_k, n), dtype=np.uint64).astype(TORUS_DTYPE)
    noise = gaussian_torus_noise(rng, noise_log2, shape=(m, l_k))
    mask_dot = torus_dot(masks, out_key.bits[None, None, :])
    weights = np.array(
        [1 << (q_bits - beta_ks_bits * (j + 1)) for j in range(l_k)], dtype=np.int64
    )
    plain = to_torus(in_bits[:, None] * weights[None, :])
    bodies = (mask_dot + plain + noise).astype(TORUS_DTYPE)
    return KeySwitchingKey(masks, bodies, beta_ks_bits)


@dataclass
class KeySet:
    """Everything needed to evaluate bootstrapping on a server.

    ``lwe_key``/``glwe_key`` are the client's secret keys - kept here so
    tests and examples can decrypt, never consumed by the evaluation path.
    """

    params: TFHEParams
    lwe_key: LweSecretKey
    glwe_key: GlweSecretKey
    bsk: list
    ksk: KeySwitchingKey
    _bsk_tables: Dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    def bsk_spectra(self) -> list:
        """Pre-compute (and cache) every BSK GGSW transform image."""
        return [g.spectrum() for g in self.bsk]

    def bsk_spectrum_table(self, precision: str = "double") -> np.ndarray:
        """Eagerly transform the whole BSK as one batched FFT (cached).

        Returns a ``(n, (k+1)*l_b, k+1, N/2)`` complex array: the
        transform-domain image of every GGSW row of every BSK entry,
        computed in a single batched negacyclic FFT - the software
        analogue of pre-loading the Private-A2 buffer once instead of
        transforming each GGSW lazily on first touch.

        ``precision`` selects ``"double"`` (``complex128``, the default,
        bit-compatible with the lazy per-GGSW spectra) or ``"single"``
        (``complex64``, half the memory and a faster MAC; adds rounding
        noise that must be validated against the noise envelope - see
        docs/perf.md).
        """
        if precision not in ("double", "single"):
            raise ValueError(
                f"precision must be 'double' or 'single', got {precision!r}"
            )
        table = self._bsk_tables.get(precision)
        if table is None:
            stacked = np.stack([g.rows for g in self.bsk])  # (n, (k+1)l_b, k+1, N)
            # repro: allow[RPR003] the "single" table is a declared reduced-precision
            # mode; its rounding error is validated against the noise envelope
            real_dtype = np.float64 if precision == "double" else np.float32
            # repro: allow[RPR002] declared FFT boundary: centered lift feeds the transform engine
            centered = stacked.astype(np.int32).astype(real_dtype)
            table = negacyclic_fft(centered)
            self._bsk_tables[precision] = table
        return table

    def adopt_spectrum_table(self, table: np.ndarray, precision: str = "double") -> np.ndarray:
        """Install an externally computed BSK spectrum table into the cache.

        This is how pool workers map the driver's shared-memory table
        zero-copy instead of re-running the FFT-heavy pre-transform:
        after :meth:`adopt_spectrum_table`, :meth:`bsk_spectrum_table`
        returns ``table`` directly.  Shape and dtype are validated
        against ``params`` so a mismatched segment fails loudly.
        """
        if precision not in ("double", "single"):
            raise ValueError(
                f"precision must be 'double' or 'single', got {precision!r}"
            )
        p = self.params
        expected_shape = (p.n, (p.k + 1) * p.l_b, p.k + 1, p.N // 2)
        expected_dtype = np.complex128 if precision == "double" else np.complex64
        table = np.asarray(table)
        if table.shape != expected_shape:
            raise ValueError(
                f"spectrum table shape {table.shape} != expected {expected_shape}"
            )
        if table.dtype != np.dtype(expected_dtype):
            raise ValueError(
                f"spectrum table dtype {table.dtype} != expected "
                f"{np.dtype(expected_dtype)} for precision {precision!r}"
            )
        self._bsk_tables[precision] = table
        return table

    def drop_spectrum_cache(self) -> None:
        """Release every cached transform-domain image.

        Clears the eager per-precision tables *and* the lazy per-GGSW
        spectra, so the next :meth:`bsk_spectrum_table` /
        :meth:`bsk_spectra` call recomputes from the coefficient-domain
        BSK.  Pool workers call this right after fork, before mapping
        the shared segment, so the only transform-domain image a worker
        holds is the shared one.
        """
        self._bsk_tables.clear()
        for g in self.bsk:
            g._spectrum = None


def generate_keyset(params: TFHEParams, rng: np.random.Generator) -> KeySet:
    """Generate the full TFHE key material for ``params``.

    The BSK encrypts each LWE key bit ``s_i`` as a GGSW under the GLWE
    key; the KSK switches the extracted ``k*N``-dimension key back down to
    the original ``n``-dimension LWE key.
    """
    lwe_key = lwe_keygen(params.n, rng)
    glwe_key = glwe_keygen(params.k, params.N, rng)
    bsk = [
        ggsw_encrypt(
            int(bit), glwe_key, params.beta_bits, params.l_b, rng,
            noise_log2=params.glwe_noise_log2, q_bits=params.q_bits,
        )
        for bit in lwe_key.bits
    ]
    ksk = make_ksk(
        glwe_key.extracted_lwe_bits(), lwe_key,
        params.beta_ks_bits, params.l_k, rng,
        noise_log2=params.lwe_noise_log2, q_bits=params.q_bits,
    )
    return KeySet(params, lwe_key, glwe_key, bsk, ksk)
