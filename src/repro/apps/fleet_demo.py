"""Multi-process fleet telemetry demo: ``python -m repro.apps.fleet_demo``.

The smallest end-to-end exercise of :mod:`repro.observability.distrib`:
a driver process opens its own telemetry shard, starts a root trace,
injects the trace carrier, and forks N workers; each worker runs rounds
of the real batched-bootstrap pipeline (``TfheContext.gate_batch`` on
the test parameter set) under its own shard with heartbeats running.
The driver then aggregates every shard into one fleet report - one
timeline, exact fleet latency percentiles, per-worker rows.

``--kill K`` SIGKILLs worker K mid-run, leaving a shard with no final
heartbeat (and possibly a truncated last line): the aggregator's
dead-worker detector declares it lost and builds a ``worker_lost``
evidence bundle.  The CI ``fleet-telemetry`` job runs the clean 4-worker
variant and fails if any worker is reported lost.
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import signal
import sys
import time
from typing import List, Optional

DEFAULT_WORKERS = 4
DEFAULT_ROUNDS = 3
DEFAULT_BATCH = 8
DEFAULT_HEARTBEAT_S = 0.1

_GATES = ("and", "or", "xor", "nand")


def _worker_main(worker_id: str, shard_dir: str, carrier: Optional[str],
                 rounds: int, batch: int, heartbeat_s: float,
                 kill_after_round: Optional[int], seed: int) -> None:
    """One worker process: shard + heartbeats + batched bootstraps.

    Module-level (picklable) so the spawn start method works too; the
    fork path additionally exercises the at-fork singleton reset.
    """
    from repro import observability as obs
    from repro.observability.distrib import worker_telemetry
    from repro.params import TEST_PARAMS
    from repro.tfhe.ops import TfheContext

    with worker_telemetry(worker_id, shard_dir, carrier=carrier,
                          heartbeat_interval_s=heartbeat_s):
        ctx = TfheContext.create(TEST_PARAMS, seed=seed)
        for r in range(rounds):
            with obs.TRACER.span(f"{worker_id}/round{r}", category="fleet",
                                 worker=worker_id, round=r):
                names = [_GATES[i % len(_GATES)] for i in range(batch)]
                xs = [ctx.encrypt((i >> 0) & 1) for i in range(batch)]
                ys = [ctx.encrypt((i >> 1) & 1) for i in range(batch)]
                ctx.gate_batch(names, xs, ys)
            if kill_after_round is not None and r >= kill_after_round:
                os.kill(os.getpid(), signal.SIGKILL)  # hard crash, no cleanup


def run_fleet(workers: int = DEFAULT_WORKERS, rounds: int = DEFAULT_ROUNDS,
              batch: int = DEFAULT_BATCH, out: str = "fleet-shards",
              kill: Optional[int] = None,
              heartbeat_s: float = DEFAULT_HEARTBEAT_S,
              dump_dir: Optional[str] = None):
    """Drive the fleet and return the aggregated
    :class:`~repro.observability.distrib.FleetReport`."""
    from repro import observability as obs
    from repro.observability import context as trace_context
    from repro.observability.distrib import (
        aggregate_shards,
        discover_shards,
        worker_telemetry,
    )

    try:
        mp = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork (Windows)
        mp = multiprocessing.get_context()

    with worker_telemetry("driver", out, heartbeat_interval_s=heartbeat_s):
        root = trace_context.start_trace()
        with obs.TRACER.span("fleet/submit", category="fleet",
                             ctx=root, workers=workers):
            carrier = trace_context.inject(root)
            procs: List[multiprocessing.Process] = []
            for i in range(workers):
                kill_after = 1 if (kill is not None and i == kill) else None
                proc = mp.Process(
                    target=_worker_main,
                    args=(f"w{i}", out, carrier, rounds, batch, heartbeat_s,
                          kill_after, 100 + i),
                )
                proc.start()
                procs.append(proc)
            for proc in procs:
                proc.join(timeout=120.0)
        if kill is not None:
            # Let the driver's heartbeats extend the fleet timeline past
            # the dead worker's last beacon so the detector can fire.
            time.sleep(4.0 * heartbeat_s)

    shards = discover_shards(out)
    return aggregate_shards(shards, dump_dir=dump_dir)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.apps.fleet_demo",
        description="multi-process batched-bootstrap run with per-worker "
                    "telemetry shards and fleet aggregation",
    )
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS,
                        help="batched-bootstrap rounds per worker")
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH,
                        help="gates per batched bootstrap")
    parser.add_argument("--out", default="fleet-shards",
                        help="shard directory (events-<id>.jsonl per worker)")
    parser.add_argument("--kill", type=int, default=None, metavar="K",
                        help="SIGKILL worker K mid-run (worker_lost drill)")
    parser.add_argument("--heartbeat", type=float, default=DEFAULT_HEARTBEAT_S,
                        dest="heartbeat_s", metavar="SECONDS")
    parser.add_argument("--dump", default=None, metavar="DIR",
                        help="write worker_lost evidence bundles here")
    args = parser.parse_args(argv)

    report = run_fleet(workers=args.workers, rounds=args.rounds,
                       batch=args.batch, out=args.out, kill=args.kill,
                       heartbeat_s=args.heartbeat_s, dump_dir=args.dump)
    print(report.render_text())
    if args.kill is None and report.lost_workers:
        # A clean run must never lose a worker (the CI gate).
        print("unexpected worker_lost in a clean run", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
