"""Encrypted database queries over TFHE (the paper's Section I motivates
"secure database application" as an FHE workload).

A server holds rows of radix-encrypted integers and answers filter +
aggregate queries without learning values: predicates (``=``, ``<``,
``>=``) evaluate to encrypted indicator bits via digit-wise LUT
bootstraps; aggregation multiplies each row value by its indicator
(one LUT per digit) and sums homomorphically.

Also exported: :func:`database_query_workload`, the scheduler demand of
a query over ``rows`` records - so Table-VI-style costing extends to the
database domain.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.scheduler import LayerDemand
from ..tfhe.integer import (
    RadixInteger,
    add_integers,
    bootstrap_cost,
    decrypt_integer,
    encrypt_integer,
    equals_integer,
    less_than_integer,
)
from ..tfhe.lwe import LweCiphertext, lwe_add
from ..tfhe.ops import TfheContext
from .workload import Workload

__all__ = ["EncryptedTable", "database_query_workload"]

_PREDICATES = ("eq", "lt", "ge")


@dataclass
class _Row:
    key: RadixInteger
    value: RadixInteger


class EncryptedTable:
    """A tiny encrypted key/value table supporting filtered aggregation."""

    def __init__(self, ctx: TfheContext, num_digits: int = 3, digit_bits: int = 2) -> None:
        self.ctx = ctx
        self.num_digits = num_digits
        self.digit_bits = digit_bits
        self._rows = []

    def __len__(self) -> int:
        return len(self._rows)

    def insert(self, key: int, value: int) -> None:
        """Encrypt and store one record."""
        self._rows.append(_Row(
            encrypt_integer(self.ctx, key, self.num_digits, self.digit_bits),
            encrypt_integer(self.ctx, value, self.num_digits, self.digit_bits),
        ))

    # ------------------------------------------------------------------
    def _predicate_bit(self, row: _Row, predicate: str, operand: int) -> LweCiphertext:
        ctx = self.ctx
        enc_operand = encrypt_integer(ctx, operand, self.num_digits, self.digit_bits)
        if predicate == "eq":
            return equals_integer(ctx, row.key, enc_operand)
        if predicate == "lt":
            return less_than_integer(ctx, row.key, enc_operand)
        if predicate == "ge":
            return ctx.lwe_not(less_than_integer(ctx, row.key, enc_operand))
        raise ValueError(f"unknown predicate {predicate!r}; known: {_PREDICATES}")

    def _masked_value(self, row: _Row, bit: LweCiphertext) -> RadixInteger:
        """``value if bit else 0`` - one LUT per digit.

        ``digit + base*bit`` lands in [0, base) when the bit is 0 and in
        [base, 2*base) when it is 1 - still inside the p=16 padded
        half-space - and a single LUT selects the digit or zero.  The
        gate-space bit (q/8) rescales into digit space (q/16) with a
        plaintext factor of ``base/2``.
        """
        ctx = self.ctx
        base = 1 << self.digit_bits
        from ..tfhe.integer import DIGIT_P
        from ..tfhe.lwe import lwe_scalar_mul

        shift = lwe_scalar_mul(base // 2, bit) if base > 2 else bit
        masked_digits = []
        for digit_ct in row.value.digits:
            moved = lwe_add(digit_ct, shift)
            lut = [v - base if v >= base else 0 for v in range(DIGIT_P // 2)]
            masked_digits.append(ctx.apply_lut(moved, lut, DIGIT_P))
        return RadixInteger(masked_digits, self.digit_bits)

    # ------------------------------------------------------------------
    def count_where(self, predicate: str, operand: int) -> LweCiphertext:
        """Encrypted count of rows matching the predicate (sum of bits)."""
        if not self._rows:
            raise ValueError("table is empty")
        total = None
        for row in self._rows:
            bit = self._predicate_bit(row, predicate, operand)
            total = bit if total is None else lwe_add(total, bit)
        return total

    def sum_where(self, predicate: str, operand: int) -> RadixInteger:
        """Encrypted sum of values over rows matching the predicate."""
        if not self._rows:
            raise ValueError("table is empty")
        total = None
        for row in self._rows:
            bit = self._predicate_bit(row, predicate, operand)
            masked = self._masked_value(row, bit)
            total = masked if total is None else add_integers(self.ctx, total, masked)
        return total

    # -- client-side decodes -------------------------------------------
    def decrypt_count(self, count_ct: LweCiphertext) -> int:
        """Decrypt a count (valid while #matches < 4, the gate space)."""
        return self.ctx.decrypt(count_ct, 8)

    def decrypt_sum(self, sum_ct: RadixInteger) -> int:
        return decrypt_integer(self.ctx, sum_ct)


def database_query_workload(
    rows: int, num_digits: int = 8, aggregate: bool = True
) -> Workload:
    """Scheduler demand of one filtered-aggregate query over ``rows``.

    All per-row predicates are independent (one parallel layer); the
    masking LUTs form a second layer; the final addition tree costs
    ``2 * num_digits`` bootstraps per level over ``log2(rows)`` levels.
    """
    if rows < 1:
        raise ValueError("query needs at least one row")
    predicate = rows * bootstrap_cost("less_than", num_digits)
    layers = [LayerDemand("predicates", bootstraps=predicate)]
    if aggregate:
        layers.append(LayerDemand("mask-values", bootstraps=rows * num_digits))
        level = rows
        depth = 0
        while level > 1:
            level = -(-level // 2)
            layers.append(LayerDemand(
                f"reduce-{depth}", bootstraps=level * bootstrap_cost("add", num_digits)
            ))
            depth += 1
    return Workload(
        f"db-query-{rows}rows",
        tuple(layers),
        description=f"filtered aggregate over {rows} rows of {num_digits}-digit integers",
    )
