"""XG-Boost classifier over TFHE (paper Section VI-A, Table VI).

Two artifacts:

1. :func:`xgboost_workload` - the scheduler demand of the paper's
   benchmark model (100 estimators, depth <= 6), lowered the Concrete-ML
   way: every tree node comparison is one programmable bootstrap
   (quantized feature vs threshold), all comparisons across all trees are
   independent (one big parallel layer), then a per-tree leaf-aggregation
   layer and a final argmax layer.  Trained depth-6 XGBoost trees are
   sparse; we charge ``NODES_PER_TREE = 24`` average internal nodes,
   calibrated against the paper's reported runtimes (DESIGN.md).
2. :class:`EncryptedTreeEnsemble` - a small *functional* tree ensemble
   that actually runs on the scheme: encrypted feature comparisons via
   ``compare_ge`` and path evaluation via gates, verifying the lowering
   end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.scheduler import LayerDemand
from typing import Optional

from ..tfhe.lwe import LweCiphertext, lwe_add
from ..tfhe.ops import TfheContext
from .workload import Workload

__all__ = [
    "NODES_PER_TREE",
    "xgboost_workload",
    "TreeNode",
    "EncryptedTreeEnsemble",
]

#: Average internal comparison nodes of one trained depth-6 estimator.
NODES_PER_TREE = 24


def xgboost_workload(n_estimators: int = 100, nodes_per_tree: int = NODES_PER_TREE,
                     n_classes: int = 10) -> Workload:
    """Scheduler demand of the Table VI XG-Boost benchmark."""
    if n_estimators < 1 or nodes_per_tree < 1:
        raise ValueError("ensemble must have estimators and nodes")
    comparisons = n_estimators * nodes_per_tree
    layers = (
        LayerDemand("node-comparisons", bootstraps=comparisons,
                    linear_macs=comparisons * 8),
        LayerDemand("leaf-aggregation", bootstraps=n_estimators,
                    linear_macs=n_estimators * nodes_per_tree),
        LayerDemand("class-argmax", bootstraps=n_classes),
    )
    return Workload(
        "XG-Boost",
        layers,
        description=(
            f"{n_estimators} estimators x ~{nodes_per_tree} comparison nodes, "
            "one PBS per quantized threshold comparison"
        ),
    )


# ---------------------------------------------------------------------------
# Functional mini-ensemble
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TreeNode:
    """A depth-1 split: feature index, threshold, and two leaf values."""

    feature: int
    threshold: int
    left_value: int  # returned when feature < threshold
    right_value: int  # returned when feature >= threshold

    def evaluate_plain(self, features: list) -> int:
        return self.right_value if features[self.feature] >= self.threshold else self.left_value


class EncryptedTreeEnsemble:
    """A stump ensemble evaluated homomorphically.

    Each stump compares an encrypted feature against its plaintext
    threshold (one PBS), then selects the leaf contribution with linear
    arithmetic: ``left + bit * (right - left)`` needs ``bit * delta``,
    which for the {0,1}-bit is one more PBS (LUT multiply).  The ensemble
    score is the homomorphic sum of stump outputs - decryptable and
    checkable against the plaintext ensemble.
    """

    def __init__(self, ctx: TfheContext, stumps: list) -> None:
        if not stumps:
            raise ValueError("ensemble needs at least one stump")
        self.ctx = ctx
        self.stumps = list(stumps)

    def predict_plain(self, features: list) -> int:
        return sum(s.evaluate_plain(features) for s in self.stumps)

    def predict_encrypted(self, encrypted_features: list) -> LweCiphertext:
        """Homomorphic ensemble score of offset-encoded signed features."""
        ctx = self.ctx
        p = ctx.default_p
        total: Optional[LweCiphertext] = None
        for stump in self.stumps:
            bit = ctx.compare_ge(encrypted_features[stump.feature], stump.threshold, p)
            delta = stump.right_value - stump.left_value
            # value = left + bit * delta, computed with one LUT bootstrap
            # mapping bit {0,1} -> {left, right} in signed encoding.
            quarter = p // 4
            lut = [min(max(stump.left_value + (x == 1) * delta, -quarter), quarter - 1) + quarter
                   for x in range(p // 2)]
            contribution = ctx.apply_lut(bit, lut, p)
            total = contribution if total is None else lwe_add(total, contribution)
        # Each contribution carries one offset (quarter); the sum carries
        # len(stumps) of them. Caller decodes with decode_score().
        assert total is not None  # constructor guarantees >= 1 stump
        return total

    def decode_score(self, ct: LweCiphertext) -> int:
        """Decrypt the ensemble score, removing the stacked offsets."""
        ctx = self.ctx
        p = ctx.default_p
        raw = ctx.decrypt(ct, p)
        return (raw - len(self.stumps) * (p // 4)) % p
