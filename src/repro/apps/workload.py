"""Application workload descriptors consumed by the scheduler + simulator.

A :class:`Workload` is a named sequence of dependency layers
(:class:`~repro.core.scheduler.LayerDemand`): within a layer every
bootstrap is independent (the SW-scheduler batches them into groups);
across layers there is a barrier.  This matches how Concrete-ML lowers
tree ensembles and quantized networks: per-layer programmable bootstraps
for activations/requantization, linear algebra in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.scheduler import LayerDemand
from ..observability import BUS as _BUS

if TYPE_CHECKING:  # lazy at runtime to keep apps importable without core
    from ..core.accelerator import MorphlingConfig
    from ..observability.slo import SLORegistry
    from ..params import TFHEParams

__all__ = ["Workload"]


@dataclass(frozen=True)
class Workload:
    """A TFHE application expressed as bootstrap/linear-op demands."""

    name: str
    layers: tuple
    description: str = ""

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("workload needs at least one layer")
        for layer in self.layers:
            if not isinstance(layer, LayerDemand):
                raise TypeError("layers must be LayerDemand instances")

    @property
    def total_bootstraps(self) -> int:
        return sum(l.bootstraps for l in self.layers)

    @property
    def total_linear_macs(self) -> int:
        return sum(l.linear_macs for l in self.layers)

    @property
    def depth(self) -> int:
        """Number of sequential dependency levels."""
        return len(self.layers)

    def summary(self) -> str:
        return (
            f"{self.name}: {self.depth} layers, "
            f"{self.total_bootstraps:,} bootstraps, "
            f"{self.total_linear_macs:,} linear MACs"
        )

    def slos(self, config: "MorphlingConfig", params: "TFHEParams",
             slack: float = 2.0) -> "SLORegistry":
        """Price this workload's default SLO contract from the cycle model.

        Returns an :class:`repro.observability.slo.SLORegistry` with
        p50/p95/p99 completion-time objectives sized to this workload's
        bootstrap population on ``(config, params)``, a throughput floor,
        and the standard decryption-failure budget.  Price *before*
        enabling telemetry - the reference simulation publishes its own
        events.
        """
        from ..observability.slo import price_slos

        return price_slos(config, params,
                          total_bootstraps=self.total_bootstraps, slack=slack)

    def announce(self) -> None:
        """Publish the workload descriptor on the telemetry bus.

        Runners call this before scheduling so the dashboard and any
        flight-recorder bundle name the workload the events belong to.
        No-op when the bus is disabled.
        """
        if _BUS.enabled:
            _BUS.publish("workload", self.name,
                         value=float(self.total_bootstraps),
                         layers=self.depth,
                         linear_macs=self.total_linear_macs)
