"""Homomorphic neural-network layer helpers.

Two halves:

1. *Workload accounting* - how many bootstraps and linear MACs a
   quantized conv/FC layer demands when lowered to TFHE the Concrete-ML
   way: the linear part is plaintext-weight x ciphertext accumulation
   (no bootstrap), and every output value pays
   ``PBS_PER_ACTIVATION`` programmable bootstraps (requantize the
   accumulator + apply the activation LUT).
2. *Functional mini-layers* - real encrypted dense/ReLU evaluation on
   the scheme substrate, used by the examples and integration tests to
   prove the lowering actually computes the right numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.scheduler import LayerDemand
from ..tfhe.lwe import LweCiphertext, lwe_add, lwe_add_plain, lwe_scalar_mul, lwe_trivial
from ..tfhe.ops import TfheContext
from ..tfhe.torus import encode_message

__all__ = [
    "PBS_PER_ACTIVATION",
    "ConvSpec",
    "FcSpec",
    "conv_layer_demand",
    "fc_layer_demand",
    "encrypted_dot",
    "encrypted_dense_relu",
]

#: Bootstraps per produced activation value: one to requantize the
#: widened accumulator back to the message space, one for the activation
#: LUT.  (Concrete-ML fuses them when the activation is monotone; we keep
#: the conservative two, documented in DESIGN.md.)
PBS_PER_ACTIVATION = 2


@dataclass(frozen=True)
class ConvSpec:
    """One convolution layer on square feature maps."""

    name: str
    in_hw: int
    in_ch: int
    out_ch: int
    kernel: int
    stride: int = 1
    activated: bool = True

    @property
    def out_hw(self) -> int:
        return max(1, (self.in_hw - self.kernel) // self.stride + 1)

    @property
    def activations(self) -> int:
        return self.out_hw * self.out_hw * self.out_ch

    @property
    def macs(self) -> int:
        return self.activations * self.kernel * self.kernel * self.in_ch


@dataclass(frozen=True)
class FcSpec:
    """One fully connected layer."""

    name: str
    in_features: int
    out_features: int
    activated: bool = True

    @property
    def activations(self) -> int:
        return self.out_features

    @property
    def macs(self) -> int:
        return self.in_features * self.out_features


def conv_layer_demand(spec: ConvSpec) -> LayerDemand:
    """Scheduler demand of one conv layer."""
    pbs = spec.activations * PBS_PER_ACTIVATION if spec.activated else 0
    return LayerDemand(spec.name, bootstraps=pbs, linear_macs=spec.macs)


def fc_layer_demand(spec: FcSpec) -> LayerDemand:
    """Scheduler demand of one FC layer."""
    pbs = spec.activations * PBS_PER_ACTIVATION if spec.activated else 0
    return LayerDemand(spec.name, bootstraps=pbs, linear_macs=spec.macs)


# ---------------------------------------------------------------------------
# Functional mini-layers (run on the real scheme)
# ---------------------------------------------------------------------------
def encrypted_dot(cts: list, weights: list, n: int) -> LweCiphertext:
    """Plaintext-weight dot product of encrypted values (linear, no PBS)."""
    if len(cts) != len(weights):
        raise ValueError("ciphertexts and weights must align")
    acc = lwe_trivial(0, n)
    for ct, w in zip(cts, weights):
        if w:
            acc = lwe_add(acc, lwe_scalar_mul(int(w), ct))
    return acc


def encrypted_dense_relu(
    ctx: TfheContext, inputs: list, weight_rows: list, p: Optional[int] = None
) -> list:
    """One dense layer + ReLU over offset-binary signed ciphertexts.

    ``inputs`` are offset-encoded signed values in ``[-p/4, p/4)``; small
    integer weights.  The offset of the encoding is corrected after the
    plaintext-weight accumulation so a single ReLU bootstrap per output
    suffices - the exact lowering the workload accounting charges (up to
    the fused requantization).
    """
    p = p or ctx.default_p
    n = ctx.params.n
    outputs = []
    quarter_torus = int(encode_message(p // 4, p, ctx.params.q_bits)[()])
    for weights in weight_rows:
        acc = encrypted_dot(inputs, weights, n)
        # inputs encode v + p/4, so the dot product carries an extra
        # sum(w) * p/4; subtract it and re-add one offset for the output.
        offset_correction = (1 - sum(int(w) for w in weights)) * quarter_torus
        acc = lwe_add_plain(acc, offset_correction)
        outputs.append(ctx.relu_signed(acc, p))
    return outputs
