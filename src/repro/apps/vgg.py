"""VGG-9 CIFAR-10 benchmark model (paper Section VI-A, Table VI).

Architecture (from the paper): 32x32x3 input; six 3x3 CONV layers of 64,
64, 128, 128, 256, 256 filters with 2x2 average pooling after the second
and fourth; FC 512, FC 512, FC 10.

Substitution note (DESIGN.md): the paper's quantized VGG-9 comes from
Stoian et al. [43], whose exact activation/bootstrap recipe is not
public.  Counting one PBS pair per raw activation gives ~460 k PBS, an
order of magnitude more than the paper's reported 0.675 s can contain;
their model evidently applies structured activation reduction (fused
pool-activation + channel grouping).  We model that as
``ACTIVATION_REDUCTION = 8``: one activation bootstrap pair per 8 raw
feature-map values, calibrated once against the paper's VGG-9 runtime
and applied uniformly.  All layer shapes, MAC counts and the layer
dependency structure are exact.
"""

from __future__ import annotations

from ..core.scheduler import LayerDemand
from .nn_layers import PBS_PER_ACTIVATION, ConvSpec, FcSpec
from .workload import Workload

__all__ = ["ACTIVATION_REDUCTION", "vgg9_specs", "vgg9_workload"]

ACTIVATION_REDUCTION = 8


def vgg9_specs() -> list:
    """The nine weight layers with pooling folded into the spatial dims."""
    return [
        ConvSpec("conv1-64", in_hw=32, in_ch=3, out_ch=64, kernel=3),
        ConvSpec("conv2-64", in_hw=30, in_ch=64, out_ch=64, kernel=3),
        # 2x2 average pool -> 14x14
        ConvSpec("conv3-128", in_hw=14, in_ch=64, out_ch=128, kernel=3),
        ConvSpec("conv4-128", in_hw=12, in_ch=128, out_ch=128, kernel=3),
        # 2x2 average pool -> 5x5
        ConvSpec("conv5-256", in_hw=5, in_ch=128, out_ch=256, kernel=3),
        ConvSpec("conv6-256", in_hw=3, in_ch=256, out_ch=256, kernel=3),
        FcSpec("fc1-512", in_features=256, out_features=512),
        FcSpec("fc2-512", in_features=512, out_features=512),
        FcSpec("fc3-10", in_features=512, out_features=10, activated=False),
    ]


def vgg9_workload() -> Workload:
    """Scheduler demand of the VGG-9 CIFAR-10 inference."""
    layers = []
    for spec in vgg9_specs():
        if spec.activated:
            pbs = max(1, spec.activations // ACTIVATION_REDUCTION) * PBS_PER_ACTIVATION
        else:
            pbs = 0
        layers.append(LayerDemand(spec.name, bootstraps=pbs, linear_macs=spec.macs))
    return Workload(
        "VGG-9",
        tuple(layers),
        description=(
            "CIFAR-10 VGG-9 (64/64/128/128/256/256 convs + 512/512/10 FCs), "
            f"activation reduction {ACTIVATION_REDUCTION}x per DESIGN.md"
        ),
    )
