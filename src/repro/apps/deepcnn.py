"""DeepCNN-X benchmark models (paper Section VI-A, Table VI).

The paper's DeepCNN-X (X = 20, 50, 100) takes an 8x8x1 input:

- 3x3 CONV, 2 filters;
- 3x3 CONV, 92 filters, stride 2;
- X layers of 1x1 CONV, 92 filters each (the paper notes each needs
  368 ReLU evaluations: the 2x2x92 feature map);
- 2x2 CONV, 16 filters;
- FC with 10 neurons.

Every activated value pays :data:`~repro.apps.nn_layers.PBS_PER_ACTIVATION`
bootstraps; layers are sequential dependency levels.
"""

from __future__ import annotations

from .nn_layers import ConvSpec, FcSpec, conv_layer_demand, fc_layer_demand
from .workload import Workload

__all__ = ["deepcnn_specs", "deepcnn_workload"]


def deepcnn_specs(depth: int) -> list:
    """Layer specs of DeepCNN-``depth``."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    specs = [
        ConvSpec("conv1-3x3x2", in_hw=8, in_ch=1, out_ch=2, kernel=3),
        ConvSpec("conv2-3x3x92-s2", in_hw=6, in_ch=2, out_ch=92, kernel=3, stride=2),
    ]
    hw = specs[-1].out_hw  # 2x2 feature maps through the 1x1 trunk
    for i in range(depth):
        specs.append(
            ConvSpec(f"conv1x1-{i + 1}", in_hw=hw, in_ch=92, out_ch=92, kernel=1)
        )
    specs.append(ConvSpec("conv-last-2x2x16", in_hw=hw, in_ch=92, out_ch=16, kernel=2))
    specs.append(FcSpec("fc-10", in_features=16, out_features=10, activated=False))
    return specs


def deepcnn_workload(depth: int) -> Workload:
    """Scheduler demand of DeepCNN-``depth``."""
    layers = []
    for spec in deepcnn_specs(depth):
        if isinstance(spec, ConvSpec):
            layers.append(conv_layer_demand(spec))
        else:
            layers.append(fc_layer_demand(spec))
    return Workload(
        f"DeepCNN-{depth}",
        tuple(layers),
        description=(
            f"8x8x1 input, {depth} 1x1-conv trunk layers of 92 filters "
            "(368 ReLUs per trunk layer)"
        ),
    )
