"""Application workloads: XG-Boost, DeepCNN-X, VGG-9 (Table VI), plus the
functional homomorphic building blocks (dense/ReLU layers, encrypted
tree ensembles) that prove the lowerings on the real scheme."""

from .database import EncryptedTable, database_query_workload
from .deepcnn import deepcnn_specs, deepcnn_workload
from .genomics import GenotypeMatcher, genome_match_workload
from .nn_layers import (
    PBS_PER_ACTIVATION,
    ConvSpec,
    FcSpec,
    conv_layer_demand,
    encrypted_dense_relu,
    encrypted_dot,
    fc_layer_demand,
)
from .vgg import ACTIVATION_REDUCTION, vgg9_specs, vgg9_workload
from .workload import Workload
from .xgboost import (
    NODES_PER_TREE,
    EncryptedTreeEnsemble,
    TreeNode,
    xgboost_workload,
)

__all__ = [
    "Workload",
    "EncryptedTable",
    "database_query_workload",
    "GenotypeMatcher",
    "genome_match_workload",
    "ConvSpec",
    "FcSpec",
    "PBS_PER_ACTIVATION",
    "conv_layer_demand",
    "fc_layer_demand",
    "encrypted_dot",
    "encrypted_dense_relu",
    "deepcnn_specs",
    "deepcnn_workload",
    "ACTIVATION_REDUCTION",
    "vgg9_specs",
    "vgg9_workload",
    "NODES_PER_TREE",
    "TreeNode",
    "EncryptedTreeEnsemble",
    "xgboost_workload",
]
