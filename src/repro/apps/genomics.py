"""Secure genome matching over TFHE (the paper's Section I cites private
genome analysis as an FHE application).

The canonical primitive is private genotype matching: compare a patient's
encrypted SNP vector against a reference panel and return how many sites
differ (Hamming distance) - all under encryption.  Per SNP site the
circuit is one XNOR (match bit), and the distance is a popcount tree of
encrypted bits; thresholding the distance (one LUT bootstrap) yields a
private "related / unrelated" verdict.

Functional model: :class:`GenotypeMatcher` runs the real scheme.
Workload model: :func:`genome_match_workload` lowers a panel-scale match
into scheduler layers for Table-VI-style costing.
"""

from __future__ import annotations

import math

from ..core.scheduler import LayerDemand
from ..tfhe.lwe import LweCiphertext, lwe_add
from ..tfhe.ops import TfheContext
from .workload import Workload

__all__ = ["GenotypeMatcher", "genome_match_workload"]


class GenotypeMatcher:
    """Encrypted SNP-vector matching for small functional demos."""

    def __init__(self, ctx: TfheContext, num_sites: int) -> None:
        if num_sites < 1:
            raise ValueError("need at least one SNP site")
        if num_sites > 3:
            # The distance accumulates in the p=8 gate space: counts above
            # 3 would cross the padding bit.
            raise ValueError("functional demo supports up to 3 sites (p=8 space)")
        self.ctx = ctx
        self.num_sites = num_sites

    def encrypt_genotype(self, snps: list) -> list:
        """Encrypt a list of SNP bits."""
        if len(snps) != self.num_sites:
            raise ValueError(f"expected {self.num_sites} SNP bits")
        return [self.ctx.encrypt(int(b) & 1) for b in snps]

    def hamming_distance(self, a: list, b: list) -> LweCiphertext:
        """Encrypted count of differing sites (sum of XOR bits)."""
        if len(a) != self.num_sites or len(b) != self.num_sites:
            raise ValueError("genotype length mismatch")
        total = None
        for x, y in zip(a, b):
            diff = self.ctx.gate("xor", x, y)
            total = diff if total is None else lwe_add(total, diff)
        return total

    def matches_within(self, a: list, b: list, threshold: int) -> LweCiphertext:
        """Bit: 1 iff the Hamming distance is <= ``threshold``."""
        distance = self.hamming_distance(a, b)
        return self.ctx.apply_lut(distance, lambda d: 1 if d <= threshold else 0, 8)

    def decrypt_distance(self, ct: LweCiphertext) -> int:
        return self.ctx.decrypt(ct, 8)


def genome_match_workload(
    num_sites: int = 10_000, panel_size: int = 16, count_bits: int = 8
) -> Workload:
    """Scheduler demand of matching one genome against a reference panel.

    Per panel entry: one XOR bootstrap per site (parallel layer), then a
    popcount reduction tree over encrypted ``count_bits``-bit counters
    (each tree level costs ``2 * count_bits`` bootstraps per surviving
    node, the radix-add cost), then one threshold LUT.
    """
    if num_sites < 1 or panel_size < 1:
        raise ValueError("workload needs sites and panel entries")
    comparisons = num_sites * panel_size
    layers = [LayerDemand("site-xor", bootstraps=comparisons)]
    level = num_sites
    depth = 0
    while level > 1:
        level = -(-level // 2)
        layers.append(LayerDemand(
            f"popcount-{depth}",
            bootstraps=panel_size * level * 2 * count_bits,
        ))
        depth += 1
        if depth > int(math.log2(num_sites)) + 1:
            break
    layers.append(LayerDemand("thresholds", bootstraps=panel_size))
    return Workload(
        f"genome-match-{num_sites}x{panel_size}",
        tuple(layers),
        description=(
            f"private Hamming match of {num_sites} SNPs against a "
            f"{panel_size}-genome panel"
        ),
    )
