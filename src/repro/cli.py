"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``     simulate bootstrap performance for a parameter set
``experiments``  regenerate paper tables/figures (all or one by id)
``area``         print the area/power breakdown of a configuration
``workload``     cost an application workload on the accelerator model
``demo``         run a functional encrypt/bootstrap/decrypt round-trip
``trace``        render the XPU pipeline timeline (``--chrome`` exports
                 a Perfetto/chrome://tracing trace-event file)
``metrics``      run one telemetry-enabled bootstrap group and print the
                 metrics snapshot (Prometheus text or ``--json``)
``profile``      run the perf-counter profiler: bottleneck attribution,
                 roofline position, and what-if upgrade estimates
                 (``--json`` for the schema-versioned report, ``--chrome``
                 for counter tracks in a trace-event file)
``verify``       statically verify compiled instruction streams for the
                 shipped configurations (``--strict`` fails on errors),
                 lint source trees for torus-discipline violations
                 (``--lint PATH``), or verify an encoded instruction
                 blob end to end (``--binary FILE``); ``--occupancy`` /
                 ``--noise-budget`` attach the abstract-interpretation
                 proofs (buffer high-water marks, static failure bound)
``noise``        run a boolean-gate workload under noise telemetry:
                 per-op predicted noise, drift verdicts, and the
                 decryption-failure probability (``--measure`` decrypts
                 with the debug key for predicted-vs-measured pairs;
                 ``--json``/``--chrome`` export the noise waterfall)
``top``          live telemetry dashboard: drive a workload under the
                 event bus and redraw bootstraps/s, batch occupancy,
                 stage fractions, HBM traffic, drift verdicts and recent
                 anomalies between rounds
``record``       run a workload with the flight recorder armed; write
                 the event-window bundle (and, with ``--jsonl``, the
                 full structured event log) for offline replay
``replay``       load flight-recorder bundle(s): print a summary or
                 render spans + counter tracks + noise waterfall as one
                 merged Chrome timeline (``--chrome``); several bundles
                 merge onto one timeline
``fleet``        aggregate per-worker telemetry shards (from a
                 multi-process run) into one fleet report: merged
                 timeline, exact fleet latency percentiles, per-worker
                 rows and dead-worker detection (exit 1 on worker_lost)
"""

from __future__ import annotations

import argparse
import json
import sys

from .params import PARAM_SETS, get_params

__all__ = ["main", "build_parser"]


def _print_json(payload) -> None:
    """The one ``--json`` serializer every report command shares."""
    from .observability import to_jsonable

    print(json.dumps(to_jsonable(payload), indent=2, sort_keys=True))


#: Workload names shared by ``workload``, ``top`` and ``record``.
_WORKLOADS = ("xgboost", "deepcnn-20", "deepcnn-50", "deepcnn-100", "vgg9")


def _make_workload(name: str):
    from .apps import deepcnn_workload, vgg9_workload, xgboost_workload

    factories = {
        "xgboost": xgboost_workload,
        "deepcnn-20": lambda: deepcnn_workload(20),
        "deepcnn-50": lambda: deepcnn_workload(50),
        "deepcnn-100": lambda: deepcnn_workload(100),
        "vgg9": vgg9_workload,
    }
    return factories[name]()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Morphling (HPCA 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="simulate bootstrap performance")
    sim.add_argument("--set", default="I", dest="param_set",
                     choices=sorted(PARAM_SETS) + ["fig1"],
                     help="TFHE parameter set (Table III)")
    _add_config_args(sim)
    sim.add_argument("--json", action="store_true",
                     help="print the full SimulationReport as JSON")

    exp = sub.add_parser("experiments", help="regenerate paper tables/figures")
    exp.add_argument("--id", default=None, dest="experiment_id",
                     help="one experiment id (e.g. table5); default: all")
    exp.add_argument("--list", action="store_true", help="list experiment ids")

    area = sub.add_parser("area", help="area/power breakdown")
    area.add_argument("--xpus", type=int, default=4)

    wl = sub.add_parser("workload", help="cost an application workload")
    wl.add_argument("name", choices=sorted(_WORKLOADS))
    wl.add_argument("--set", default="III", dest="param_set",
                    choices=sorted(PARAM_SETS))
    wl.add_argument("--noise", action="store_true",
                    help="append the analytic decryption-failure budget "
                         "(union bound over the workload's bootstraps)")
    wl.add_argument("--json", action="store_true",
                    help="print the costing (and, with --noise, the "
                         "failure report) as JSON")

    demo = sub.add_parser("demo", help="functional encrypt/bootstrap/decrypt")
    demo.add_argument("--message", type=int, default=3)
    demo.add_argument("--seed", type=int, default=0)

    trace = sub.add_parser("trace", help="render the XPU pipeline timeline")
    trace.add_argument("--set", default="I", dest="param_set",
                       choices=sorted(PARAM_SETS))
    trace.add_argument("--iterations", type=int, default=5)
    trace.add_argument("--reuse", default="input+output",
                       choices=["none", "input", "input+output"])
    trace.add_argument("--no-merge-split", action="store_true")
    trace.add_argument("--chrome", metavar="PATH", default=None,
                       help="also write a Chrome/Perfetto trace-event JSON "
                            "file of the pipeline (open in ui.perfetto.dev)")
    trace.add_argument("--merge", action="store_true",
                       help="with --chrome: merge the pipeline timeline and "
                            "the perf-counter tracks into one file (each "
                            "system gets its own process group)")

    met = sub.add_parser(
        "metrics",
        help="simulate one bootstrap group with telemetry on, print metrics",
    )
    met.add_argument("--set", default="I", dest="param_set",
                     choices=sorted(PARAM_SETS) + ["fig1"])
    _add_config_args(met)
    met.add_argument("--functional", action="store_true",
                     help="also run a real (test-parameter) bootstrap so the "
                          "TFHE/transform counters fire")
    met.add_argument("--json", action="store_true",
                     help="print the snapshot as JSON instead of Prometheus "
                          "text exposition")
    met.add_argument("--chrome", metavar="PATH", default=None,
                     help="write the recorded spans as a Chrome/Perfetto "
                          "trace-event JSON file")

    prof = sub.add_parser(
        "profile",
        help="perf-counter profiler: bottleneck attribution + what-ifs",
    )
    prof.add_argument("--config", default="morphling",
                      choices=["morphling", "no-reuse", "input-reuse"],
                      help="named accelerator configuration")
    prof.add_argument("--set", "--params", default="I", dest="param_set",
                      choices=sorted(PARAM_SETS) + ["fig1"],
                      help="TFHE parameter set (Table III)")
    prof.add_argument("--no-what-if", action="store_true",
                      help="skip the what-if simulator re-runs")
    prof.add_argument("--noise", action="store_true",
                      help="append the analytic decryption-failure budget "
                           "for one steady-state group")
    prof.add_argument("--json", action="store_true",
                      help="print the schema-versioned profile as JSON")
    prof.add_argument("--chrome", metavar="PATH", default=None,
                      help="write the counter tracks as a Chrome/Perfetto "
                           "trace-event JSON file")

    ver = sub.add_parser(
        "verify",
        help="static program verifier + domain linter (repro.verify)",
    )
    ver.add_argument("--strict", action="store_true",
                     help="exit non-zero when any error-severity finding "
                          "is reported (the CI gate)")
    ver.add_argument("--lint", metavar="PATH", nargs="+", default=None,
                     help="run the AST domain linter over these "
                          "files/directories instead of verifying "
                          "compiled programs")
    ver.add_argument("--target", default=None,
                     help="only verify shipped targets whose name "
                          "contains this substring (e.g. 'xgboost')")
    ver.add_argument("--list-rules", action="store_true",
                     help="print the verifier pass and lint rule catalog")
    ver.add_argument("--json", action="store_true",
                     help="emit the reports as JSON")
    ver.add_argument("--binary", metavar="FILE", default=None,
                     help="decode an isa_encoding instruction blob and run "
                          "the verifier pass pipeline on it")
    ver.add_argument("--occupancy", action="store_true",
                     help="attach the VER007 occupancy-over-time proof "
                          "(per-buffer high-water marks) to each report")
    ver.add_argument("--noise-budget", action="store_true",
                     help="attach the VER008 static noise-budget report "
                          "(predicted failure probability) to each report")

    noi = sub.add_parser(
        "noise",
        help="noise telemetry: run a gate workload, report predicted "
             "(and, with --measure, measured) noise + failure probability",
    )
    noi.add_argument("--set", default="test", dest="param_set",
                     choices=sorted(PARAM_SETS) + ["test"],
                     help="TFHE parameter set (default: the fast test set)")
    noi.add_argument("--workload", default="adder",
                     choices=["adder", "gates"],
                     help="boolean workload: a 2-bit ripple-carry adder "
                          "circuit, or one of each basic gate")
    noi.add_argument("--seed", type=int, default=7)
    noi.add_argument("--measure", action="store_true",
                     help="register the debug secret key so every tracked "
                          "op also records its measured phase error")
    noi.add_argument("--fail-prob", action="store_true",
                     help="print only the decryption-failure report")
    noi.add_argument("--json", action="store_true",
                     help="print the full noise snapshot (records, drift, "
                          "failure probability) as JSON")
    noi.add_argument("--chrome", metavar="PATH", default=None,
                     help="write the noise waterfall as a Chrome/Perfetto "
                          "trace-event JSON file")

    top = sub.add_parser(
        "top",
        help="live telemetry dashboard over repeated workload rounds",
    )
    top.add_argument("--workload", default="xgboost",
                     choices=sorted(_WORKLOADS))
    top.add_argument("--set", default="III", dest="param_set",
                     choices=sorted(PARAM_SETS))
    top.add_argument("--iterations", type=int, default=3,
                     help="workload rounds to drive (one redraw per round)")
    top.add_argument("--interval", type=float, default=0.0,
                     help="seconds to sleep between redraws")
    top.add_argument("--json", action="store_true",
                     help="print the final aggregated snapshot as JSON "
                          "instead of redrawing the panel")
    top.add_argument("--from", dest="from_files", metavar="JSONL",
                     action="append", default=None,
                     help="fold a recorded JSONL event log (repro record "
                          "--jsonl) offline instead of running a workload; "
                          "repeat the flag to merge several worker shards "
                          "into one fleet view (all must share one event "
                          "schema version)")

    slo = sub.add_parser(
        "slo",
        help="run a workload under the latency SLO engine and report "
             "objective compliance",
    )
    slo.add_argument("--workload", default="xgboost",
                     choices=sorted(_WORKLOADS))
    slo.add_argument("--set", default="III", dest="param_set",
                     choices=sorted(PARAM_SETS))
    slo.add_argument("--slack", type=float, default=2.0,
                     help="objective slack multiplier over the cycle-model "
                          "pricing (default 2.0)")
    slo.add_argument("--degrade", action="store_true",
                     help="run on the equal-resource No-Reuse config while "
                          "keeping Morphling-priced objectives (induces a "
                          "p99 breach; for drills and tests)")
    slo.add_argument("--dump", metavar="DIR", default=None,
                     help="flight-recorder dump directory for slo_burn "
                          "bundles")
    slo.add_argument("--json", action="store_true",
                     help="print the schema-versioned SLO report as JSON")

    rec = sub.add_parser(
        "record",
        help="run a workload with the flight recorder armed, save the bundle",
    )
    rec.add_argument("--workload", default="xgboost",
                     choices=sorted(_WORKLOADS))
    rec.add_argument("--set", default="III", dest="param_set",
                     choices=sorted(PARAM_SETS))
    rec.add_argument("-o", "--output", metavar="PATH", default="flight.json",
                     help="bundle file to write (default: flight.json)")
    rec.add_argument("--jsonl", metavar="PATH", default=None,
                     help="also stream every bus event to this JSONL log")
    rec.add_argument("--latency-budget", type=float, default=None,
                     metavar="SECONDS",
                     help="arm the latency-spike trigger at this makespan")
    rec.add_argument("--window", type=float, default=None, metavar="SECONDS",
                     help="flight-recorder dump window (default 30s)")

    rep = sub.add_parser(
        "replay",
        help="summarize a flight bundle or render it as a merged timeline",
    )
    rep.add_argument("bundles", nargs="+", metavar="bundle",
                     help="flight-recorder bundle JSON file(s); several "
                          "merge into one timeline (all must share one "
                          "event schema version)")
    rep.add_argument("--chrome", metavar="PATH", default=None,
                     help="write the bundle as one merged Chrome/Perfetto "
                          "timeline: spans + counter tracks + noise "
                          "waterfall in a single file")
    rep.add_argument("--json", action="store_true",
                     help="print the bundle summary as JSON")

    fleet = sub.add_parser(
        "fleet",
        help="aggregate per-worker telemetry shards into one fleet report",
    )
    fleet.add_argument("shards", nargs="+", metavar="SHARD",
                       help="per-worker JSONL shards (events-<id>.jsonl), "
                            "or a directory containing them")
    fleet.add_argument("--miss-factor", type=float, default=None,
                       metavar="K",
                       help="declare a worker lost after K missed heartbeat "
                            "intervals (default 3.0)")
    fleet.add_argument("--dump", metavar="DIR", default=None,
                       help="write worker_lost evidence bundles here")
    fleet.add_argument("--chrome", metavar="PATH", default=None,
                       help="write the merged fleet timeline as a "
                            "Chrome/Perfetto trace-event JSON file")
    fleet.add_argument("--json", action="store_true",
                       help="print the schema-versioned fleet report as JSON")

    pool = sub.add_parser(
        "pool",
        help="run a sharded bootstrap workload and print the scaling table",
    )
    pool.add_argument("--set", default="test", dest="param_set",
                      help="parameter set name ('test' or a shipped set)")
    pool.add_argument("--workers", default="1,2,4", metavar="N[,N...]",
                      help="comma-separated pool widths to sweep")
    pool.add_argument("--batch", type=int, default=16,
                      help="ciphertexts per sharded batch")
    pool.add_argument("--rounds", type=int, default=3,
                      help="timing repetitions (best-of)")
    pool.add_argument("--backend", default=None,
                      help="compute backend (default: $REPRO_BACKEND or "
                           "numpy; unknown names list the available ones)")
    pool.add_argument("--precision", default="double",
                      choices=["double", "single"],
                      help="BSK spectrum table precision")
    pool.add_argument("--seed", type=int, default=3)
    pool.add_argument("--telemetry", metavar="DIR", default=None,
                      help="write per-width fleet telemetry shards under "
                           "DIR/workers<N>/ (aggregate with 'repro fleet')")
    pool.add_argument("--json", action="store_true",
                      help="print the scaling result as JSON")
    return parser


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    """Accelerator-configuration flags shared by simulate/metrics."""
    parser.add_argument("--xpus", type=int, default=4, help="number of XPUs")
    parser.add_argument("--a1-kib", type=int, default=4096,
                        help="Private-A1 capacity in KiB")
    parser.add_argument("--reuse", default="input+output",
                        choices=["none", "input", "input+output"],
                        help="transform-domain reuse class")
    parser.add_argument("--no-merge-split", action="store_true",
                        help="disable the merge-split FFT")


def _config_from_args(args) -> "MorphlingConfig":
    from .core.accelerator import MorphlingConfig
    from .core.reuse import ReuseType

    reuse = {
        "none": ReuseType.NO_REUSE,
        "input": ReuseType.INPUT_REUSE,
        "input+output": ReuseType.INPUT_OUTPUT_REUSE,
    }[args.reuse]
    return MorphlingConfig(
        num_xpus=args.xpus,
        private_a1_bytes=args.a1_kib * 1024,
        reuse=reuse,
        merge_split=not args.no_merge_split,
    )


def _cmd_simulate(args) -> int:
    from .core.simulator import simulate_bootstrap

    report = simulate_bootstrap(_config_from_args(args), get_params(args.param_set))
    if args.json:
        _print_json(report)
        return 0
    print(f"parameter set {args.param_set}:")
    print(f"  bootstrap latency : {report.bootstrap_latency_ms:.3f} ms")
    print(f"  throughput        : {report.throughput_bs:,.0f} bootstraps/s")
    print(f"  bottleneck        : {report.bottleneck}")
    print(f"  scheduler group   : {report.group_size} ciphertexts "
          f"({report.acc_streams} resident streams)")
    print(f"  BSK/KSK reuse     : {report.bsk_reuse}x / {report.ksk_reuse}x")
    return 0


def _cmd_experiments(args) -> int:
    from .experiments import ALL_EXPERIMENTS

    if args.list:
        for exp_id in ALL_EXPERIMENTS:
            print(exp_id)
        return 0
    if args.experiment_id is not None:
        try:
            runner = ALL_EXPERIMENTS[args.experiment_id]
        except KeyError:
            print(f"unknown experiment {args.experiment_id!r}; "
                  f"known: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
            return 2
        print(runner().to_text())
        return 0
    for runner in ALL_EXPERIMENTS.values():
        print(runner().to_text())
        print()
    return 0


def _cmd_area(args) -> int:
    from .core.accelerator import MorphlingConfig
    from .core.area_power import AreaPowerModel

    model = AreaPowerModel(MorphlingConfig(num_xpus=args.xpus))
    for name, cost in model.breakdown().items():
        print(f"  {name:32s} {cost.area_mm2:7.2f} mm^2  {cost.power_w:6.2f} W")
    total = model.total()
    print(f"  {'Total':32s} {total.area_mm2:7.2f} mm^2  {total.power_w:6.2f} W")
    return 0


def _cmd_workload(args) -> int:
    from .baselines import CpuCostModel
    from .core.accelerator import MorphlingConfig
    from .core.scheduler import run_workload

    workload = _make_workload(args.name)
    params = get_params(args.param_set)
    workload.announce()
    result = run_workload(MorphlingConfig(), params, list(workload.layers))
    cpu_s = CpuCostModel().workload_seconds(
        params, workload.total_bootstraps, workload.total_linear_macs
    )
    failure = None
    if args.noise:
        from .analysis.failprob import estimate_app_failure

        failure = estimate_app_failure(params, workload.total_bootstraps)
    if args.json:
        payload = {
            "workload": workload.name,
            "param_set": params.name,
            "layers": workload.depth,
            "bootstraps": workload.total_bootstraps,
            "linear_macs": workload.total_linear_macs,
            "morphling_seconds": result.total_seconds,
            "utilization": result.utilization,
            "padding_waste": result.padding_waste,
            "cpu_seconds": cpu_s,
            "speedup": cpu_s / result.total_seconds,
        }
        if failure is not None:
            payload["failure"] = failure.to_jsonable()
        _print_json(payload)
        return 0 if failure is None or failure.within_budget else 1
    print(workload.summary())
    print(f"  Morphling : {result.total_seconds:.3f} s "
          f"(XPU utilization {result.utilization['xpu']:.0%})")
    print(f"  64-core CPU: {cpu_s:.2f} s")
    print(f"  speedup    : {cpu_s / result.total_seconds:.0f}x")
    if failure is not None:
        print(failure.render_text())
        return 0 if failure.within_budget else 1
    return 0


def _cmd_demo(args) -> int:
    from .tfhe.ops import TfheContext

    ctx = TfheContext.create(get_params("test"), seed=args.seed)
    if not 0 <= args.message < 4:
        print("message must be in [0, 4)", file=sys.stderr)
        return 2
    ct = ctx.encrypt(args.message)
    refreshed = ctx.bootstrap(ct)
    print(f"encrypted {args.message} -> bootstrap -> decrypted "
          f"{ctx.decrypt(refreshed)}")
    a, b = ctx.encrypt(1), ctx.encrypt(args.message % 2)
    print(f"NAND(1, {args.message % 2}) = {ctx.decrypt(ctx.gate('nand', a, b))}")
    return 0


def _cmd_trace(args) -> int:
    from .core.trace import render_timeline, trace_blind_rotation
    from .core.xpu import XpuModel
    from .observability import pipeline_trace_events, write_chrome_trace

    config = _config_from_args_for_trace(args)
    params = get_params(args.param_set)
    trace = trace_blind_rotation(config, params, iterations=args.iterations)
    print(render_timeline(trace))
    analytic = XpuModel(config, params).iteration_cycles()
    print(f"steady state: {trace.steady_state_interval():.0f} cycles/iteration "
          f"(analytic {analytic:.0f}); bottleneck: {trace.bottleneck()}")
    if args.chrome:
        events = pipeline_trace_events(trace)
        if args.merge:
            from . import observability as obs
            from .core.simulator import simulate_bootstrap
            from .observability import counter_track_events, merged_trace_events

            with obs.counting() as bank:
                simulate_bootstrap(config, params)
                counter_events = counter_track_events(bank)
            events = merged_trace_events(
                {"pipeline": events, "counters": counter_events}
            )
        write_chrome_trace(
            args.chrome,
            events,
            metadata={"param_set": params.name, "config": config.name,
                      "iterations": trace.iterations, "merged": args.merge},
        )
        kind = "merged Chrome trace" if args.merge else "Chrome trace"
        print(f"wrote {kind} to {args.chrome} "
              f"(open in ui.perfetto.dev or chrome://tracing)")
    return 0


def _cmd_metrics(args) -> int:
    from . import observability as obs
    from .core.simulator import simulate_bootstrap

    config = _config_from_args(args)
    params = get_params(args.param_set)
    obs.reset()
    obs.enable()
    try:
        simulate_bootstrap(config, params)
        if args.functional:
            from .tfhe.ops import TfheContext

            ctx = TfheContext.create(get_params("test"), seed=0)
            ctx.bootstrap(ctx.encrypt(1))
        snapshot = obs.REGISTRY.snapshot()
        spans = obs.TRACER.spans()
    finally:
        obs.disable()
    if args.chrome:
        obs.write_chrome_trace(
            args.chrome, obs.chrome_trace_events(spans),
            metadata={"param_set": params.name, "config": config.name},
        )
    if args.json:
        _print_json({"param_set": params.name, "config": config.name,
                     "metrics": snapshot})
    else:
        print(obs.render_prometheus(snapshot), end="")
        if args.chrome:
            print(f"# wrote Chrome trace to {args.chrome}")
    return 0


def _cmd_profile(args) -> int:
    from .analysis.profile import collect_profile
    from .core.accelerator import MorphlingConfig

    factories = {
        "morphling": MorphlingConfig.morphling,
        "no-reuse": MorphlingConfig.no_reuse,
        "input-reuse": MorphlingConfig.input_reuse,
    }
    config = factories[args.config]()
    params = get_params(args.param_set)
    profile = collect_profile(config, params, what_ifs=not args.no_what_if)
    if args.chrome:
        from . import observability as obs
        from .core.simulator import simulate_bootstrap

        with obs.counting() as bank:
            simulate_bootstrap(config, params)
            events = obs.counter_track_events(bank)
        obs.write_chrome_trace(
            args.chrome, events,
            metadata={"param_set": params.name, "config": config.name,
                      "counters_digest": profile.counters_digest},
        )
    failure = None
    if args.noise:
        from .analysis.failprob import estimate_app_failure

        failure = estimate_app_failure(params, profile.group_size)
    if args.json:
        if failure is not None:
            from .observability import to_jsonable

            _print_json({"profile": to_jsonable(profile),
                         "failure": failure.to_jsonable()})
        else:
            _print_json(profile)
    else:
        print(profile.render_text())
        if failure is not None:
            print(failure.render_text())
        if args.chrome:
            print(f"wrote counter tracks to {args.chrome} "
                  f"(open in ui.perfetto.dev or chrome://tracing)")
    return 0


def _cmd_verify(args) -> int:
    from .verify.cli import run

    return run(
        lint=args.lint,
        strict=args.strict,
        as_json=args.json,
        list_rules=args.list_rules,
        target=args.target,
        binary=args.binary,
        occupancy=args.occupancy,
        noise_budget=args.noise_budget,
    )


def _noise_workload_adder(ctx):
    """2-bit ripple-carry adder: the boolean-gate reference workload."""
    from .tfhe.boolean import Circuit, ripple_carry_adder

    circuit = Circuit()
    a_bits = [circuit.add_input("a0"), circuit.add_input("a1")]
    b_bits = [circuit.add_input("b0"), circuit.add_input("b1")]
    sums, carry = ripple_carry_adder(circuit, a_bits, b_bits)
    for i, s in enumerate(sums):
        circuit.mark_output(s, f"s{i}")
    circuit.mark_output(carry, "carry")
    inputs = {"a0": 1, "a1": 1, "b0": 1, "b1": 0}  # 3 + 1 = 4
    enc = {name: ctx.encrypt(bit) for name, bit in inputs.items()}
    out = circuit.evaluate_encrypted(ctx, enc)
    expected = circuit.evaluate_plain(inputs)
    decoded = {name: ctx.decrypt(ct) for name, ct in out.items()}
    return decoded, expected


def _noise_workload_gates(ctx):
    """One of each basic gate over fresh bit ciphertexts."""
    decoded, expected = {}, {}
    for name in ("and", "or", "xor", "nand", "nor", "xnor"):
        from .tfhe.ops import GATE_LUTS

        x, y = ctx.encrypt(1), ctx.encrypt(0)
        decoded[name] = ctx.decrypt(ctx.gate(name, x, y))
        expected[name] = GATE_LUTS[name](1)
    return decoded, expected


def _cmd_noise(args) -> int:
    from . import observability as obs
    from .analysis.failprob import estimate_failure_probability
    from .tfhe.ops import TfheContext

    params = get_params(args.param_set)
    ctx = TfheContext.create(params, seed=args.seed)
    debug_key = ctx.keyset.lwe_key if args.measure else None
    workload = {"adder": _noise_workload_adder,
                "gates": _noise_workload_gates}[args.workload]
    with obs.noise_tracking(lwe_key=debug_key) as tracker:
        decoded, expected = workload(ctx)
        drift = obs.drift_report(tracker)
        report = estimate_failure_probability(tracker)
        snapshot = tracker.snapshot()
        if args.chrome:
            obs.write_chrome_trace(
                args.chrome, obs.noise_trace_events(snapshot),
                metadata={"param_set": params.name, "workload": args.workload},
            )
    functional_ok = decoded == expected
    if args.json:
        _print_json({
            "param_set": params.name,
            "workload": args.workload,
            "functional_ok": functional_ok,
            "outputs": decoded,
            "noise": snapshot,
            "drift": [d.to_jsonable() for d in drift],
            "failure": report.to_jsonable(),
        })
        return 0 if functional_ok else 1
    if not args.fail_prob:
        mode = "measured" if args.measure else "predicted only"
        print(f"noise telemetry: workload '{args.workload}' on parameter set "
              f"{params.name} ({mode})")
        print(f"  outputs {decoded} "
              f"{'==' if functional_ok else '!='} expected {expected}")
        print(f"  {len(tracker.records())} tracked ops, "
              f"{len(tracker.failure_points())} decision points")
        header = (f"  {'op class':28s} {'count':>5s} {'pred std':>10s} "
                  f"{'meas rms':>10s} {'worst σ':>8s}  verdict")
        print(header)
        for d in drift:
            meas = (f"2^{_log2(d.measured_rms):.1f}" if d.measured_count
                    else "-")
            worst = f"{d.worst_sigma:.2f}" if d.measured_count else "-"
            verdict = "ok" if d.within_envelope else "DRIFT"
            if not d.measured_count:
                verdict = "unmeasured"
            print(f"  {d.op:28s} {d.count:5d} "
                  f"{'2^%.1f' % _log2(d.predicted_std_rms):>10s} "
                  f"{meas:>10s} {worst:>8s}  {verdict}")
    print(report.render_text())
    budget_ok = report.meets(-20.0)
    print(f"  within 2^-20 budget: {'yes' if budget_ok else 'NO'}")
    if args.chrome:
        print(f"wrote noise waterfall to {args.chrome} "
              f"(open in ui.perfetto.dev or chrome://tracing)")
    drift_ok = all(d.within_envelope for d in drift)
    return 0 if (functional_ok and drift_ok and budget_ok) else 1


def _cmd_top(args) -> int:
    from . import observability as obs
    from .core.accelerator import MorphlingConfig
    from .core.scheduler import run_workload
    from .observability.bus import TelemetryBus
    from .observability.dashboard import Dashboard, run_top

    if args.from_files:
        # Offline post-mortem: fold recorded event logs through the same
        # aggregation a live run feeds.  A private disabled bus keeps the
        # dashboard away from the process singletons.  With the flag
        # repeated, the fleet aggregator merges the shards onto one
        # timeline first (rejecting mixed schema versions).
        from .observability.distrib import aggregate_shards

        dash = Dashboard(bus=TelemetryBus())
        try:
            if len(args.from_files) == 1:
                count = dash.feed_jsonl(args.from_files[0])
            else:
                report = aggregate_shards(args.from_files)
                count = dash.feed_events(report.events)
        except (OSError, ValueError) as exc:
            source = ", ".join(args.from_files)
            print(f"cannot replay {source}: {exc}", file=sys.stderr)
            return 2
        finally:
            dash.close()
        if args.json:
            _print_json(dash.snapshot())
        else:
            print(dash.render())
            sources = ", ".join(args.from_files)
            print(f"(offline: {count} events from {sources})")
        return 0

    workload = _make_workload(args.workload)
    params = get_params(args.param_set)
    config = MorphlingConfig()

    def round_(i: int) -> None:
        if i == 0:
            workload.announce()
        run_workload(config, params, list(workload.layers))

    with obs.telemetry():
        if args.json:
            dash = obs.Dashboard()
            try:
                for i in range(args.iterations):
                    round_(i)
            finally:
                dash.close()
            _print_json(dash.snapshot())
        else:
            run_top(round_, iterations=args.iterations,
                    interval_s=args.interval)
    return 0


def _cmd_slo(args) -> int:
    from . import observability as obs
    from .analysis.failprob import estimate_app_failure
    from .core.accelerator import MorphlingConfig
    from .core.scheduler import run_workload
    from .observability.flightrec import flight_recording
    from .observability.slo import SLOMonitor

    workload = _make_workload(args.workload)
    params = get_params(args.param_set)
    reference = MorphlingConfig.morphling()
    run_config = MorphlingConfig.no_reuse() if args.degrade else reference
    # Price objectives BEFORE enabling telemetry: the reference simulation
    # publishes its own events, which must not reach the monitor.
    slos = workload.slos(reference, params, slack=args.slack)
    failure = estimate_app_failure(params, workload.total_bootstraps)
    monitor = SLOMonitor(slos)
    with obs.telemetry(), flight_recording(dump_dir=args.dump):
        monitor.attach()
        try:
            workload.announce()
            run_workload(run_config, params, list(workload.layers))
        finally:
            monitor.detach()
    report = monitor.evaluate(failure=failure)
    if args.json:
        _print_json(report.to_jsonable())
    else:
        print(f"slo: workload '{workload.name}' on {run_config.name}@"
              f"{params.name}, objectives priced from {reference.name} "
              f"at {args.slack:g}x slack")
        print(report.render_text())
        if args.dump and monitor.breaches:
            print(f"flight bundles for {len(monitor.breaches)} slo_burn "
                  f"alert(s) under {args.dump}/")
    return 0 if report.ok else 1


def _cmd_record(args) -> int:
    from . import observability as obs
    from .core.accelerator import MorphlingConfig
    from .core.scheduler import run_workload
    from .observability.bus import JsonlEventLog
    from .observability.flightrec import flight_recording

    workload = _make_workload(args.workload)
    params = get_params(args.param_set)
    log = None
    # Full telemetry (registry/tracer/counters/noise) so the bundle holds
    # spans and counter samples, then the recorder armed on top of it.
    with obs.telemetry(), flight_recording(window_s=args.window) as rec:
        if args.jsonl:
            log = JsonlEventLog(args.jsonl)
        try:
            workload.announce()
            run_workload(MorphlingConfig(), params, list(workload.layers),
                         latency_budget_s=args.latency_budget)
        finally:
            if log is not None:
                log.close()
        # Prefer an anomaly-triggered bundle; fall back to a manual
        # capture of the full ring so `record` always produces one.
        bundle = rec.last_bundle
        if bundle is None:
            bundle = rec.dump(args.output, "manual",
                              workload=workload.name, params=params.name)
        else:
            with open(args.output, "w") as fh:
                json.dump(bundle, fh, indent=1)
    print(f"recorded {len(bundle['events'])} events "
          f"(trigger: {bundle['trigger']['reason']}) -> {args.output}")
    if args.jsonl:
        print(f"event log: {args.jsonl} ({log.lines_written} events)")
    return 0


def _merge_bundles(bundles: "list") -> dict:
    """Concatenate several flight bundles into one pseudo-bundle.

    Events sort by their ``t_s``; kind counts sum; the trigger records
    which bundles went in.  Callers must have checked that the event
    schema versions match.
    """
    events = sorted(
        (e for b in bundles for e in b.get("events", [])),
        key=lambda e: (float(e.get("t_s", 0.0)), int(e.get("seq", 0))),
    )
    counts: dict = {}
    for b in bundles:
        for kind, count in b.get("counts", {}).items():
            counts[kind] = counts.get(kind, 0) + count
    return {
        "schema_version": bundles[0]["schema_version"],
        "kind": "flight_bundle",
        "event_schema_version": bundles[0].get("event_schema_version"),
        "trigger": {
            "reason": "merged_replay",
            "t_s": max(float(b["trigger"]["t_s"]) for b in bundles),
            "fields": {"bundles": len(bundles),
                       "reasons": sorted({str(b["trigger"]["reason"])
                                          for b in bundles})},
        },
        "window_s": max(float(b.get("window_s", 0.0)) for b in bundles),
        "capacity": sum(int(b.get("capacity", 0)) for b in bundles),
        "counts": {k: counts[k] for k in sorted(counts)},
        "events": events,
    }


def _cmd_replay(args) -> int:
    from .observability.export import flight_trace_events, write_chrome_trace
    from .observability.flightrec import load_bundle

    bundles = []
    for path in args.bundles:
        try:
            bundles.append(load_bundle(path))
        except (OSError, ValueError) as exc:
            print(f"cannot replay {path}: {exc}", file=sys.stderr)
            return 2
    versions = {b.get("event_schema_version") for b in bundles}
    if len(versions) > 1:
        detail = "; ".join(
            f"{path}: v{b.get('event_schema_version')}"
            for path, b in zip(args.bundles, bundles)
        )
        print(f"cannot replay bundles with mixed event schema versions "
              f"({detail})", file=sys.stderr)
        return 2
    bundle = bundles[0] if len(bundles) == 1 else _merge_bundles(bundles)
    source = ", ".join(args.bundles)
    trigger = bundle["trigger"]
    if args.chrome:
        write_chrome_trace(
            args.chrome, flight_trace_events(bundle),
            metadata={"bundle": source,
                      "trigger": trigger["reason"],
                      "schema_version": bundle["schema_version"]},
        )
    if args.json:
        summary = {
            "schema_version": bundle["schema_version"],
            "trigger": trigger,
            "window_s": bundle["window_s"],
            "counts": bundle["counts"],
            "events": len(bundle["events"]),
        }
        _print_json(summary)
        return 0
    print(f"flight bundle {source} (schema v{bundle['schema_version']})")
    fields = ", ".join(f"{k}={v}" for k, v in trigger["fields"].items())
    print(f"  trigger : {trigger['reason']} at t={trigger['t_s']:.3f}s"
          + (f" ({fields})" if fields else ""))
    print(f"  window  : {bundle['window_s']:.1f}s, "
          f"{len(bundle['events'])} events")
    for kind, count in bundle["counts"].items():
        print(f"    {kind:14s} {count}")
    if args.chrome:
        print(f"wrote merged timeline to {args.chrome} "
              f"(open in ui.perfetto.dev or chrome://tracing)")
    return 0


def _cmd_fleet(args) -> int:
    import os

    from .observability.distrib import aggregate_shards, discover_shards
    from .observability.export import flight_trace_events, write_chrome_trace

    paths: list = []
    for entry in args.shards:
        if os.path.isdir(entry):
            found = discover_shards(entry)
            if not found:
                print(f"no events-*.jsonl shards under {entry}",
                      file=sys.stderr)
                return 2
            paths.extend(found)
        else:
            paths.append(entry)
    kwargs = {} if args.miss_factor is None else {"miss_factor": args.miss_factor}
    try:
        report = aggregate_shards(paths, dump_dir=args.dump, **kwargs)
    except (OSError, ValueError) as exc:
        print(f"cannot aggregate shards: {exc}", file=sys.stderr)
        return 2
    if args.chrome:
        write_chrome_trace(
            args.chrome, flight_trace_events(report.to_bundle()),
            metadata={"shards": len(paths),
                      "workers": sorted(report.workers)},
        )
    if args.json:
        _print_json(report.to_jsonable())
    else:
        print(report.render_text())
        if args.dump and report.lost_workers:
            print(f"worker_lost evidence bundles under {args.dump}/")
        if args.chrome:
            print(f"wrote merged fleet timeline to {args.chrome}")
    return 1 if report.lost_workers else 0


def _cmd_pool(args) -> int:
    from .pool.scaling import run_pool_scaling

    try:
        workers = [int(w) for w in str(args.workers).split(",") if w.strip()]
    except ValueError:
        print(f"invalid --workers list: {args.workers!r}", file=sys.stderr)
        return 2
    if not workers or any(w < 1 for w in workers):
        print(f"--workers needs positive integers, got {args.workers!r}",
              file=sys.stderr)
        return 2
    try:
        result = run_pool_scaling(
            param_set=args.param_set, workers=workers, batch=args.batch,
            rounds=args.rounds, backend=args.backend,
            precision=args.precision, seed=args.seed,
            telemetry_dir=args.telemetry,
        )
    except ValueError as exc:  # unknown backend / parameter set
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        _print_json(result.to_jsonable())
    else:
        print(result.render_text())
        if args.telemetry:
            print(f"fleet telemetry shards under {args.telemetry}/workers<N>/")
    return 0


def _log2(value: float) -> float:
    import math

    return math.log2(value) if value > 0 else float("-inf")


def _config_from_args_for_trace(args) -> "MorphlingConfig":
    from .core.accelerator import MorphlingConfig
    from .core.reuse import ReuseType

    reuse = {
        "none": ReuseType.NO_REUSE,
        "input": ReuseType.INPUT_REUSE,
        "input+output": ReuseType.INPUT_OUTPUT_REUSE,
    }[args.reuse]
    return MorphlingConfig(reuse=reuse, merge_split=not args.no_merge_split)


_COMMANDS = {
    "simulate": _cmd_simulate,
    "experiments": _cmd_experiments,
    "area": _cmd_area,
    "workload": _cmd_workload,
    "demo": _cmd_demo,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "profile": _cmd_profile,
    "verify": _cmd_verify,
    "noise": _cmd_noise,
    "top": _cmd_top,
    "slo": _cmd_slo,
    "record": _cmd_record,
    "replay": _cmd_replay,
    "fleet": _cmd_fleet,
    "pool": _cmd_pool,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
