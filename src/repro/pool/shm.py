"""Shared-memory publication of the pre-transformed BSK spectrum table.

The eager BSK table (:meth:`repro.tfhe.keys.KeySet.bsk_spectrum_table`)
is by far the largest transform-domain object a bootstrap server holds
- ``n * (k+1)*l_b * (k+1) * N/2`` complex values.  When work shards
across worker processes, re-computing it per worker wastes the FFT-heavy
setup N times over, and even fork copy-on-write duplicates the pages as
soon as any worker touches them for writing.  Instead the driver
publishes the table **once** into a named
:mod:`multiprocessing.shared_memory` segment; every worker maps the
same physical pages read-only and installs the mapping into its own
:class:`~repro.tfhe.keys.KeySet` cache via
:meth:`~repro.tfhe.keys.KeySet.adopt_spectrum_table`.  This is the
software analogue of a multi-chiplet accelerator sharing one key-store:
replicated compute lanes, single copy of the key material.

Lifecycle rules (POSIX):

- the **driver** creates the segment and is the only process that ever
  calls :meth:`SharedSpectrumTable.unlink`; it does so on pool
  shutdown, on worker crash, and from an ``atexit`` hook, so segments
  never outlive the run (see :func:`leaked_segments` and the SIGKILL
  drill in the tests);
- **workers** are forked, so they share the driver's
  :mod:`multiprocessing.resource_tracker` process; their attaches
  collapse into the driver's single registration and the driver's
  unlink clears it (see :meth:`SharedSpectrumTable.attach` for why
  this rules out the ``spawn`` start method).
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List, Optional, Tuple, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from ..tfhe.keys import KeySet

__all__ = [
    "SpectrumHandle",
    "SharedSpectrumTable",
    "SEGMENT_PREFIX",
    "leaked_segments",
]

#: Prefix of every segment this module creates; the leak check and the
#: CI drill look for it in /dev/shm.
SEGMENT_PREFIX = "repro-bsk-"


@dataclass(frozen=True)
class SpectrumHandle:
    """Picklable descriptor a worker needs to map a published table."""

    name: str
    shape: Tuple[int, ...]
    dtype: str
    precision: str

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


def _segment_name() -> str:
    """Collision-safe segment name carrying the owning pid for triage."""
    return f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"


def leaked_segments(prefix: str = SEGMENT_PREFIX) -> List[str]:
    """Names of live /dev/shm segments created by this module.

    A clean pool shutdown (and a crashed one) must leave this empty;
    the hygiene test asserts exactly that.  Returns ``[]`` on platforms
    without a /dev/shm filesystem.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    return sorted(n for n in os.listdir(shm_dir) if n.startswith(prefix))


class SharedSpectrumTable:
    """One BSK spectrum table living in a named shared-memory segment.

    Construct via :meth:`publish` (driver side) or :meth:`attach`
    (worker side).  ``array`` is the zero-copy ndarray view over the
    segment - read-only on workers so no lane can corrupt the shared
    key material.
    """

    def __init__(
        self,
        handle: SpectrumHandle,
        shm: shared_memory.SharedMemory,
        array: np.ndarray,
        owner: bool,
    ) -> None:
        self.handle = handle
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.array: Optional[np.ndarray] = array
        self.owner = owner
        self._unlinked = False

    @classmethod
    def publish(cls, keyset: "KeySet", precision: str = "double") -> "SharedSpectrumTable":
        """Driver side: compute (or reuse) the table and copy it into SHM."""
        table = keyset.bsk_spectrum_table(precision)
        shm = shared_memory.SharedMemory(create=True, size=table.nbytes, name=_segment_name())
        arr: np.ndarray = np.ndarray(table.shape, dtype=table.dtype, buffer=shm.buf)
        arr[...] = table
        handle = SpectrumHandle(
            name=shm.name, shape=tuple(table.shape), dtype=table.dtype.str,
            precision=precision,
        )
        return cls(handle, shm, arr, owner=True)

    @classmethod
    def attach(cls, handle: SpectrumHandle) -> "SharedSpectrumTable":
        """Worker side: map the published segment zero-copy (read-only).

        CPython's resource tracker registers every attach.  Forked
        workers inherit the driver's tracker process, whose cache is a
        per-name *set*: the attach collapses into the driver's own
        registration, and the driver's unlink removes it - so workers
        must NOT unregister (that would strip the driver's entry and
        make the tracker daemon print KeyError noise at shutdown).  A
        worker started by ``spawn`` would get its own tracker and
        wrongly unlink on exit; :class:`~repro.pool.pool.BootstrapPool`
        is fork-only for exactly this reason.
        """
        shm = shared_memory.SharedMemory(name=handle.name)
        arr: np.ndarray = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype), buffer=shm.buf)
        arr.flags.writeable = False
        return cls(handle, shm, arr, owner=False)

    def install(self, keyset: "KeySet") -> np.ndarray:
        """Adopt the mapped table into ``keyset``'s spectrum cache."""
        if self.array is None:
            raise RuntimeError("shared spectrum table already closed")
        return keyset.adopt_spectrum_table(self.array, self.handle.precision)

    def close(self, keyset: Optional["KeySet"] = None) -> None:
        """Drop the local mapping (both sides); optionally evict ``keyset``.

        The ndarray view keeps the mapping's buffer exported, so every
        reference (including an installed keyset cache entry) must be
        dropped before the segment can be closed; pass the keyset the
        table was installed into and it is evicted first.  A still
        -exported buffer is tolerated - the OS reclaims the mapping at
        process exit - because close must never mask the caller's error.
        """
        if keyset is not None:
            tables = keyset._bsk_tables
            for prec in [p for p, t in tables.items() if t is self.array]:
                del tables[prec]
        self.array = None
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:
                pass  # a live view still exports the buffer; exit reclaims it
            self._shm = None

    def unlink(self) -> None:
        """Remove the segment name (driver only; idempotent)."""
        if not self.owner or self._unlinked:
            return
        self._unlinked = True
        if self._shm is not None:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
            return
        # Already closed locally: re-attach just to remove the name.
        try:
            tmp = shared_memory.SharedMemory(name=self.handle.name)
        except FileNotFoundError:
            return
        tmp.unlink()
        tmp.close()

    def __enter__(self) -> "SharedSpectrumTable":
        return self

    def __exit__(self, *exc: object) -> None:
        self.unlink()
        self.close()
