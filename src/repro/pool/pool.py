"""Process-pool sharding of the batched bootstrap pipeline.

:class:`BootstrapPool` is the multi-lane execution layer over
:func:`repro.tfhe.bootstrap.programmable_bootstrap_batch`: a batch of
``B`` ciphertexts is split into contiguous shards, one per worker
process, and every worker runs the full MS -> BR -> SE -> KS pipeline on
its shard.  Because the batched kernel is elementwise along the batch
axis with a fixed einsum reduction order, a sharded run is bit-identical
to the single-process batch in the default ``complex128`` precision -
the pool changes *where* samples run, never *what* they compute.

Key-material economics (the whole point): the driver publishes the
pre-transformed BSK spectrum table once into shared memory
(:mod:`repro.pool.shm`); each worker maps it zero-copy and adopts it
into its keyset cache.  No worker ever runs the FFT-heavy table
pre-transform - asserted in tests via the ``transforms_fft_total``
counter each worker reports with its results.

Workers are forked (the keyset rides fork inheritance; platforms
without fork get a clear error), each drains its own task queue, and
all report into one result queue.  With ``telemetry_dir`` set, the
driver opens a telemetry shard and a root trace, injects the trace
carrier, and every worker runs under
:func:`repro.observability.distrib.worker_telemetry` - so ``repro
fleet`` aggregates the pool's shards into one causally-linked trace
with exact fleet percentiles, the same machinery as the fleet demo.

Crash safety: a worker dying (e.g. SIGKILL) is detected while waiting
for its results; the pool shuts down and the shared segment is
unlinked - on clean exits, on crashes, and from an ``atexit`` hook.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue as queue_mod
import signal
from contextlib import ExitStack
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..tfhe.keys import KeySet
from ..tfhe.lwe import LweCiphertext
from ..transforms import backends as _backends
from .shm import SharedSpectrumTable, SpectrumHandle

__all__ = ["BootstrapPool", "PoolWorkerLost", "DEFAULT_TASK_TIMEOUT_S"]

#: Ceiling on waiting for one shard result before declaring the worker
#: lost even though the process object still looks alive.
DEFAULT_TASK_TIMEOUT_S = 120.0

_POLL_S = 0.05


class PoolWorkerLost(RuntimeError):
    """A worker process died before returning its shard."""

    def __init__(self, worker_id: str, message: str) -> None:
        super().__init__(message)
        self.worker_id = worker_id


def _counter_value(name: str, **labels: Any) -> float:
    """Current value of a registry counter series (0.0 when absent)."""
    from ..observability import REGISTRY

    metric = REGISTRY.get(name)
    if metric is None:
        return 0.0
    try:
        return float(metric.value(**labels))
    except Exception:
        return 0.0


def _worker_stats() -> Dict[str, float]:
    """Telemetry counters a worker ships back with every result."""
    return {
        "pid": float(os.getpid()),
        "fft_forward": _counter_value("transforms_fft_total", direction="forward"),
        "fft_inverse": _counter_value("transforms_fft_total", direction="inverse"),
        "bootstraps": _counter_value("tfhe_bootstraps_total"),
    }


def _pool_worker_main(
    worker_id: str,
    keyset: KeySet,
    handle: SpectrumHandle,
    backend_name: str,
    precision: str,
    task_q: Any,
    result_q: Any,
    shard_dir: Optional[str],
    carrier: Optional[str],
    heartbeat_s: float,
    kill_after_jobs: Optional[int],
) -> None:
    """One pool lane: map the shared table, then drain the task queue.

    Module-level so it is importable in children; runs under
    ``worker_telemetry`` when the pool has a telemetry directory.  Tasks
    are ``(job_id, shard_idx, a, b, tps)`` tuples; ``None`` stops the
    lane.  ``kill_after_jobs`` is the crash drill: after that many
    completed jobs the lane SIGKILLs itself (no cleanup), exercising
    the driver's crash detection and segment unlink.
    """
    from contextlib import nullcontext

    from ..observability.distrib import worker_telemetry
    from ..tfhe.bootstrap import programmable_bootstrap_batch

    _backends.set_backend(backend_name)
    # Drop everything inherited over fork so the *only* transform-domain
    # image this process holds is the shared mapping.
    keyset.drop_spectrum_cache()
    shared = SharedSpectrumTable.attach(handle)
    shared.install(keyset)

    telem = (
        worker_telemetry(worker_id, shard_dir, carrier=carrier,
                         heartbeat_interval_s=heartbeat_s)
        if shard_dir is not None
        else nullcontext(None)
    )
    done = 0
    with telem:
        while True:
            task = task_q.get()
            if task is None:
                result_q.put(("bye", worker_id, None, None, None, None, _worker_stats()))
                break
            job_id, shard_idx, a, b, tps = task
            cts = [LweCiphertext(a[r], b[r]) for r in range(a.shape[0])]
            outs = programmable_bootstrap_batch(cts, tps, keyset, precision=precision)
            out_a = np.stack([ct.a for ct in outs])
            out_b = np.asarray([ct.b for ct in outs])
            result_q.put(
                ("result", worker_id, job_id, shard_idx, out_a, out_b, _worker_stats())
            )
            done += 1
            if kill_after_jobs is not None and done >= kill_after_jobs:
                # Crash drill: flush the sent result (the feeder thread
                # is async), then die without any cleanup.
                result_q.close()
                result_q.join_thread()
                os.kill(os.getpid(), signal.SIGKILL)


class BootstrapPool:
    """N forked lanes sharing one shared-memory BSK spectrum table.

    Usage::

        with BootstrapPool(keyset, workers=4) as pool:
            outs = pool.bootstrap_batch(cts, test_poly)

    ``backend`` picks the compute backend every lane runs
    (:mod:`repro.transforms.backends`; ``None`` resolves the driver's
    active backend, honouring ``REPRO_BACKEND``).  ``telemetry_dir``
    turns on the full distributed-telemetry path: driver shard + root
    trace + per-worker shards, aggregatable with ``repro fleet``.
    """

    def __init__(
        self,
        keyset: KeySet,
        workers: int = 2,
        precision: str = "double",
        backend: Optional[str] = None,
        telemetry_dir: Optional[str] = None,
        heartbeat_s: float = 0.1,
        task_timeout_s: float = DEFAULT_TASK_TIMEOUT_S,
        kill_after_jobs: Optional[Dict[int, int]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if precision not in ("double", "single"):
            raise ValueError(
                f"precision must be 'double' or 'single', got {precision!r}"
            )
        self.keyset = keyset
        self.workers = workers
        self.precision = precision
        # Resolve eagerly so unknown names fail at construction, in the
        # driver, with the available-backend list in the message.
        self.backend = (
            _backends.get_backend(backend).name
            if backend is not None
            else _backends.active_backend_name()
        )
        self.telemetry_dir = telemetry_dir
        self.heartbeat_s = heartbeat_s
        self.task_timeout_s = task_timeout_s
        self._kill_after_jobs = dict(kill_after_jobs or {})
        self._procs: List[multiprocessing.process.BaseProcess] = []
        self._task_qs: List[Any] = []
        self._result_q: Any = None
        self._shared: Optional[SharedSpectrumTable] = None
        self._stack: Optional[ExitStack] = None
        self._job_counter = 0
        self._last_stats: Dict[str, Dict[str, float]] = {}
        self._closed = False

    # -- lifecycle ----------------------------------------------------
    def start(self) -> "BootstrapPool":
        """Publish the shared table and fork the lanes (idempotent)."""
        if self._procs:
            return self
        if self._closed:
            raise RuntimeError("pool already closed")
        try:
            mp = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - Windows only
            raise RuntimeError(
                "BootstrapPool requires the fork start method "
                "(POSIX); this platform does not provide it"
            ) from exc

        self._stack = ExitStack()
        carrier: Optional[str] = None
        if self.telemetry_dir is not None:
            from .. import observability as obs
            from ..observability import context as trace_context
            from ..observability.distrib import worker_telemetry

            # The pool owns process-wide telemetry for its lifetime:
            # driver shard + root trace, exactly like the fleet demo.
            self._stack.enter_context(
                worker_telemetry("driver", self.telemetry_dir,
                                 heartbeat_interval_s=self.heartbeat_s)
            )
            root = trace_context.start_trace()
            self._stack.enter_context(
                obs.TRACER.span("pool/submit", category="pool", ctx=root,
                                workers=self.workers, backend=self.backend,
                                precision=self.precision)
            )
            carrier = trace_context.inject(root)
            if obs.BUS.enabled:
                obs.BUS.publish("workload", "pool/run", value=float(self.workers),
                                workers=self.workers, backend=self.backend,
                                precision=self.precision)

        self._shared = SharedSpectrumTable.publish(self.keyset, self.precision)
        atexit.register(self._atexit_cleanup)
        self._result_q = mp.Queue()
        for i in range(self.workers):
            task_q = mp.Queue()
            proc = mp.Process(
                target=_pool_worker_main,
                args=(
                    f"w{i}", self.keyset, self._shared.handle, self.backend,
                    self.precision, task_q, self._result_q,
                    self.telemetry_dir, carrier, self.heartbeat_s,
                    self._kill_after_jobs.get(i),
                ),
            )
            proc.daemon = True
            proc.start()
            self._task_qs.append(task_q)
            self._procs.append(proc)
        return self

    def __enter__(self) -> "BootstrapPool":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _atexit_cleanup(self) -> None:
        try:
            self.close()
        except Exception:
            pass  # interpreter shutdown: never raise from atexit

    def close(self) -> None:
        """Stop the lanes and release the shared segment (idempotent).

        The segment is unlinked *before* joining so even a wedged or
        crashed lane cannot leave the name behind; mapped pages stay
        valid in every process until it exits.
        """
        if self._closed:
            return
        self._closed = True
        if self._shared is not None:
            self._shared.unlink()
        for task_q in self._task_qs:
            try:
                task_q.put(None)
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        if self._shared is not None:
            self._shared.close()
            self._shared = None
        for task_q in self._task_qs:
            try:
                task_q.close()
            except Exception:
                pass
        self._task_qs = []
        if self._result_q is not None:
            try:
                self._result_q.close()
            except Exception:
                pass
            self._result_q = None
        self._procs = []
        if self._stack is not None:
            stack, self._stack = self._stack, None
            stack.close()

    # -- execution ----------------------------------------------------
    def _live_worker_ids(self) -> List[int]:
        return [i for i, p in enumerate(self._procs) if p.is_alive()]

    def bootstrap_batch(
        self,
        cts: Sequence[LweCiphertext],
        test_polys: np.ndarray,
    ) -> List[LweCiphertext]:
        """Shard ``cts`` across the lanes; bit-identical to one big batch.

        ``test_polys`` is one shared ``(N,)`` LUT or a per-sample
        ``(B, N)`` stack (sliced with its shard).  Results come back in
        input order.  Raises :class:`PoolWorkerLost` if a lane dies
        mid-job (the pool is closed and the segment unlinked first).
        """
        if not self._procs:
            self.start()
        cts = list(cts)
        batch = len(cts)
        if batch == 0:
            return []
        a = np.stack([ct.a for ct in cts])
        b = np.asarray([ct.b for ct in cts])
        tps = np.asarray(test_polys)
        per_sample_lut = tps.ndim == 2
        job_id = self._job_counter
        self._job_counter += 1

        shards = np.array_split(np.arange(batch), min(self.workers, batch))
        pending: Dict[int, np.ndarray] = {}
        for shard_idx, rows in enumerate(shards):
            if rows.size == 0:
                continue
            shard_tps = tps[rows] if per_sample_lut else tps
            self._task_qs[shard_idx].put(
                (job_id, shard_idx, a[rows], b[rows], shard_tps)
            )
            pending[shard_idx] = rows

        out_a = np.empty_like(a)
        out_b = np.empty_like(b)
        waited = 0.0
        dead_grace = 0.0
        while pending:
            try:
                kind, worker_id, rj, shard_idx, ra, rb, stats = self._result_q.get(
                    timeout=_POLL_S
                )
            except queue_mod.Empty:
                waited += _POLL_S
                dead = [
                    i for i in pending
                    if not self._procs[i].is_alive()
                ]
                if dead:
                    # A result the lane flushed before dying may still be
                    # in the pipe; drain briefly before declaring it lost.
                    dead_grace += _POLL_S
                    if dead_grace >= 1.0:
                        lost = f"w{dead[0]}"
                        self.close()
                        raise PoolWorkerLost(
                            lost,
                            f"pool worker {lost} died before returning its "
                            f"shard (job {job_id}); shared segment unlinked",
                        )
                if waited >= self.task_timeout_s:
                    self.close()
                    raise PoolWorkerLost(
                        "unknown",
                        f"timed out after {self.task_timeout_s:.0f}s waiting "
                        f"for shard results (job {job_id})",
                    )
                continue
            if stats is not None:
                self._last_stats[worker_id] = stats
            if kind != "result" or rj != job_id:
                continue  # late messages from a previous job / shutdown
            rows = pending.pop(shard_idx)
            out_a[rows] = ra
            out_b[rows] = rb
        return [LweCiphertext(out_a[r], out_b[r]) for r in range(batch)]

    def worker_stats(self) -> Dict[str, Dict[str, float]]:
        """Latest per-worker counters (fft counts, bootstraps, pid)."""
        return {k: dict(v) for k, v in self._last_stats.items()}
