"""Throughput-scaling harness over :class:`~repro.pool.pool.BootstrapPool`.

Runs the same batched-bootstrap workload single-process and under pools
of increasing width, reporting bootstraps/s and the scaling ratio per
worker count - the software analogue of the multi-chiplet scaling
sweep: identical lanes, shared key material, near-linear throughput.
Backs both the ``repro pool`` CLI verb and the
``benchmarks/bench_pool_scaling.py`` bench.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..params import PARAM_SETS, TEST_PARAMS, TFHEParams
from ..tfhe.bootstrap import programmable_bootstrap_batch
from ..tfhe.ops import TfheContext
from ..transforms import backends as _backends
from .pool import BootstrapPool

__all__ = ["PoolScalingResult", "run_pool_scaling", "resolve_params"]


def resolve_params(name: str) -> TFHEParams:
    """Parameter set by name; ``"test"`` is the fast functional set."""
    if name == "test":
        return TEST_PARAMS
    try:
        return PARAM_SETS[name]
    except KeyError:
        options = ", ".join(["test"] + sorted(PARAM_SETS))
        raise ValueError(f"unknown parameter set {name!r}; options: {options}")


@dataclass
class PoolScalingResult:
    """One scaling sweep: single-process baseline + per-width pool rows."""

    param_set: str
    backend: str
    precision: str
    batch: int
    rounds: int
    cpus: int
    single_bootstraps_per_s: float
    entries: List[Dict[str, Any]] = field(default_factory=list)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "param_set": self.param_set,
            "backend": self.backend,
            "precision": self.precision,
            "batch": self.batch,
            "rounds": self.rounds,
            "cpus": self.cpus,
            "single_bootstraps_per_s": round(self.single_bootstraps_per_s, 2),
            "entries": [
                {
                    "workers": e["workers"],
                    "bootstraps_per_s": round(e["bootstraps_per_s"], 2),
                    "scaling": round(e["scaling"], 3),
                }
                for e in self.entries
            ],
        }

    def render_text(self) -> str:
        lines = [
            f"pool scaling - set={self.param_set} backend={self.backend} "
            f"precision={self.precision} batch={self.batch} cpus={self.cpus}",
            f"  single-process: {self.single_bootstraps_per_s:9.1f} bootstraps/s",
            f"  {'workers':>7}  {'bootstraps/s':>12}  {'scaling':>7}",
        ]
        for e in self.entries:
            lines.append(
                f"  {e['workers']:>7}  {e['bootstraps_per_s']:>12.1f}  "
                f"{e['scaling']:>6.2f}x"
            )
        return "\n".join(lines)


def _best_rate(batch: int, rounds: int, run: Any) -> float:
    """Best-of-``rounds`` throughput of ``run()`` in bootstraps/s."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - t0)
    return batch / best


def run_pool_scaling(
    param_set: str = "test",
    workers: Sequence[int] = (1, 2, 4),
    batch: int = 16,
    rounds: int = 3,
    backend: Optional[str] = None,
    precision: str = "double",
    seed: int = 3,
    telemetry_dir: Optional[str] = None,
) -> PoolScalingResult:
    """Measure sharded-bootstrap throughput at each pool width.

    The single-process baseline and every pool lane run the same
    backend (resolved once, so the result names exactly one engine) on
    a warmed keyset - the shared-memory table publish is part of pool
    startup, never of the measured window.  With ``telemetry_dir``,
    each width writes its fleet shards into
    ``telemetry_dir/workers<n>/``.
    """
    params = resolve_params(param_set)
    backend_name = (
        _backends.get_backend(backend).name
        if backend is not None
        else _backends.active_backend_name()
    )
    ctx = TfheContext.create(params, seed=seed)
    rng = np.random.default_rng(seed)
    messages = rng.integers(0, 4, size=batch)
    cts = [ctx.encrypt(int(m), 8) for m in messages]
    tp = ctx._lut_test_poly(lambda x: x, 8)
    ctx.keyset.bsk_spectrum_table(precision)  # warm: setup out of the timing

    with _backends.use_backend(backend_name):
        programmable_bootstrap_batch(cts, tp, ctx.keyset, precision=precision)
        single = _best_rate(
            batch, rounds,
            lambda: programmable_bootstrap_batch(
                cts, tp, ctx.keyset, precision=precision
            ),
        )

    result = PoolScalingResult(
        param_set=param_set, backend=backend_name, precision=precision,
        batch=batch, rounds=rounds, cpus=os.cpu_count() or 1,
        single_bootstraps_per_s=single,
    )
    for n in workers:
        tdir = (
            os.path.join(telemetry_dir, f"workers{n}")
            if telemetry_dir is not None
            else None
        )
        with BootstrapPool(
            ctx.keyset, workers=n, precision=precision,
            backend=backend_name, telemetry_dir=tdir,
        ) as pool:
            pool.bootstrap_batch(cts, tp)  # warm every lane
            rate = _best_rate(
                batch, rounds, lambda: pool.bootstrap_batch(cts, tp)
            )
        result.entries.append({
            "workers": int(n),
            "bootstraps_per_s": rate,
            "scaling": rate / single if single else 0.0,
        })
    return result
