"""Multi-worker sharded bootstrap execution (the multi-lane analogue).

``repro.pool`` scales the batch-first bootstrap pipeline across worker
processes: one shared-memory copy of the pre-transformed BSK spectrum
(:mod:`~repro.pool.shm`), N forked lanes running the real pipeline
(:mod:`~repro.pool.pool`), and a scaling harness
(:mod:`~repro.pool.scaling`) behind ``repro pool`` and the pool bench.
Results are bit-identical to the single-process batch in ``complex128``.
"""

from .pool import DEFAULT_TASK_TIMEOUT_S, BootstrapPool, PoolWorkerLost
from .scaling import PoolScalingResult, resolve_params, run_pool_scaling
from .shm import SEGMENT_PREFIX, SharedSpectrumTable, SpectrumHandle, leaked_segments

__all__ = [
    "BootstrapPool",
    "PoolWorkerLost",
    "DEFAULT_TASK_TIMEOUT_S",
    "PoolScalingResult",
    "run_pool_scaling",
    "resolve_params",
    "SharedSpectrumTable",
    "SpectrumHandle",
    "SEGMENT_PREFIX",
    "leaked_segments",
]
