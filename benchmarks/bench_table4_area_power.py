"""Table IV bench: area/power breakdown regression."""

from repro.core.accelerator import MorphlingConfig
from repro.core.area_power import TABLE_IV_PAPER, AreaPowerModel
from repro.experiments import run_table4


def test_table4(benchmark, show):
    result = benchmark(run_table4)
    show(result)
    total_area = float(result.rows[-1][1])
    total_power = float(result.rows[-1][2])
    # Shape: totals within 1% of the paper's 74.79 mm^2 / 53.00 W.
    assert abs(total_area - TABLE_IV_PAPER["total"].area_mm2) < 0.8
    assert abs(total_power - TABLE_IV_PAPER["total"].power_w) < 0.6


def test_table4_scaling_shape(benchmark):
    model = benchmark(AreaPowerModel, MorphlingConfig(num_xpus=8))
    # Shape: doubling XPUs adds four XPU blocks plus their NoC ports.
    base_model = AreaPowerModel(MorphlingConfig())
    grown = model.total().area_mm2 - base_model.total().area_mm2
    expected = 4 * base_model.xpu_cost().area_mm2 + base_model.noc_cost().area_mm2
    assert abs(grown - expected) < 1e-9
