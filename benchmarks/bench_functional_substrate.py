"""Micro-benchmarks of the functional substrate itself.

Not a paper table - these time the Python implementation's hot paths
(negacyclic FFT, external product, full bootstrap) so substrate
regressions are visible, and they double as a sanity check that the
transform engine beats the exact engine, mirroring why Concrete and
Morphling use FFTs at all.
"""

import numpy as np
import pytest

from repro import TEST_PARAMS, TfheContext
from repro.tfhe.ggsw import external_product, external_product_transform, ggsw_encrypt
from repro.tfhe.glwe import glwe_encrypt
from repro.transforms import negacyclic_convolve_fft, negacyclic_fft


@pytest.fixture(scope="module")
def ctx():
    return TfheContext.create(TEST_PARAMS, seed=3)


def test_negacyclic_fft_n1024(benchmark):
    rng = np.random.default_rng(0)
    poly = rng.integers(-(2**31), 2**31, size=1024).astype(float)
    benchmark(negacyclic_fft, poly)


def test_negacyclic_convolution_n1024(benchmark):
    rng = np.random.default_rng(0)
    a = rng.integers(-128, 128, size=1024)
    b = rng.integers(-(2**31), 2**31, size=1024)
    result = benchmark(negacyclic_convolve_fft, a, b)
    assert result.shape == (1024,)


def test_external_product_transform_engine(benchmark, ctx):
    rng = np.random.default_rng(5)
    key = ctx.keyset.glwe_key
    g = ggsw_encrypt(1, key, TEST_PARAMS.beta_bits, TEST_PARAMS.l_b, rng)
    ct = glwe_encrypt(np.zeros(key.N, np.uint32), key, rng)
    g.spectrum()  # pre-transform, as the Private-A2 buffer would
    benchmark(external_product_transform, g, ct)


def test_exact_engine_reference_cost(benchmark, ctx):
    """Time the exact integer engine; it must lose to the transform engine
    (why Concrete and Morphling use FFTs at all)."""
    import time

    rng = np.random.default_rng(5)
    key = ctx.keyset.glwe_key
    g = ggsw_encrypt(1, key, TEST_PARAMS.beta_bits, TEST_PARAMS.l_b, rng)
    ct = glwe_encrypt(np.zeros(key.N, np.uint32), key, rng)
    g.spectrum()
    benchmark(external_product, g, ct, engine="exact")

    start = time.perf_counter()
    for _ in range(10):
        external_product_transform(g, ct)
    fast = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(10):
        external_product(g, ct, engine="exact")
    slow = time.perf_counter() - start
    assert fast < slow


def test_full_bootstrap(benchmark, ctx):
    ct = ctx.encrypt(2)
    out = benchmark(ctx.bootstrap, ct)
    assert ctx.decrypt(out) == 2
