"""Micro-benchmarks of the functional substrate itself.

Not a paper table - these time the Python implementation's hot paths
(negacyclic FFT, external product, full bootstrap) so substrate
regressions are visible, and they double as a sanity check that the
transform engine beats the exact engine, mirroring why Concrete and
Morphling use FFTs at all.
"""

import time

import numpy as np
import pytest

from repro import TEST_PARAMS, TfheContext
from repro.tfhe.bootstrap import modulus_switch, programmable_bootstrap, programmable_bootstrap_batch
from repro.tfhe.decomposition import decompose
from repro.tfhe.ggsw import external_product, external_product_transform, ggsw_encrypt
from repro.tfhe.glwe import GlweCiphertext, glwe_encrypt, glwe_rotate, glwe_trivial, sample_extract
from repro.tfhe.lwe import LweCiphertext
from repro.tfhe.polynomial import from_spectrum
from repro.tfhe.torus import to_torus
from repro.transforms import negacyclic_convolve_fft, negacyclic_fft


@pytest.fixture(scope="module")
def ctx():
    return TfheContext.create(TEST_PARAMS, seed=3)


def test_negacyclic_fft_n1024(benchmark):
    rng = np.random.default_rng(0)
    poly = rng.integers(-(2**31), 2**31, size=1024).astype(float)
    benchmark(negacyclic_fft, poly)


def test_negacyclic_convolution_n1024(benchmark):
    rng = np.random.default_rng(0)
    a = rng.integers(-128, 128, size=1024)
    b = rng.integers(-(2**31), 2**31, size=1024)
    result = benchmark(negacyclic_convolve_fft, a, b)
    assert result.shape == (1024,)


def test_external_product_transform_engine(benchmark, ctx):
    rng = np.random.default_rng(5)
    key = ctx.keyset.glwe_key
    g = ggsw_encrypt(1, key, TEST_PARAMS.beta_bits, TEST_PARAMS.l_b, rng)
    ct = glwe_encrypt(np.zeros(key.N, np.uint32), key, rng)
    g.spectrum()  # pre-transform, as the Private-A2 buffer would
    benchmark(external_product_transform, g, ct)


def test_exact_engine_reference_cost(benchmark, ctx):
    """Time the exact integer engine; it must lose to the transform engine
    (why Concrete and Morphling use FFTs at all)."""
    import time

    rng = np.random.default_rng(5)
    key = ctx.keyset.glwe_key
    g = ggsw_encrypt(1, key, TEST_PARAMS.beta_bits, TEST_PARAMS.l_b, rng)
    ct = glwe_encrypt(np.zeros(key.N, np.uint32), key, rng)
    g.spectrum()
    benchmark(external_product, g, ct, engine="exact")

    start = time.perf_counter()
    for _ in range(10):
        external_product_transform(g, ct)
    fast = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(10):
        external_product(g, ct, engine="exact")
    slow = time.perf_counter() - start
    assert fast < slow


def test_full_bootstrap(benchmark, ctx):
    ct = ctx.encrypt(2)
    out = benchmark(ctx.bootstrap, ct)
    assert ctx.decrypt(out) == 2


# ---------------------------------------------------------------------------
# Batched-pipeline throughput vs. the pre-batching (seed) per-sample path.
#
# The seed path is reimplemented here verbatim-in-spirit so the speedup is
# measured fresh on whatever machine runs the bench: lazy per-GGSW spectra,
# a Python (component, level, output) triple loop around the transform-domain
# MAC, one CMux object per blind-rotation step, and the broadcast
# key-switch contraction.  No pytest-benchmark fixture: the CI bench job
# installs only numpy + pytest.
# ---------------------------------------------------------------------------
def _seed_external_product_transform(ggsw, glwe):
    digits = decompose(glwe.data, ggsw.beta_bits, ggsw.l_b)
    spec = ggsw.spectrum()
    k, l_b, n = ggsw.k, ggsw.l_b, ggsw.N
    acc = np.zeros((k + 1, n // 2), dtype=np.complex128)
    for i in range(k + 1):
        for j in range(l_b):
            d_spec = negacyclic_fft(digits[i, j].astype(np.float64))
            for c in range(k + 1):
                acc[c] += d_spec * spec[i * l_b + j, c]
    out = np.stack([from_spectrum(acc[c], n) for c in range(k + 1)])
    return GlweCiphertext(out)


def _seed_cmux(ggsw_bit, ct_false, ct_true):
    diff = GlweCiphertext(ct_true.data - ct_false.data)
    prod = _seed_external_product_transform(ggsw_bit, diff)
    return GlweCiphertext(prod.data + ct_false.data)


def _seed_key_switch(ct, ksk):
    digits = decompose(ct.a, ksk.beta_ks_bits, ksk.l_k).T  # (m, l_k)
    mask_acc = -(digits[:, :, None] * ksk.masks.astype(np.int64)).sum(axis=(0, 1))
    body_acc = np.int64(ct.b) - (digits * ksk.bodies.astype(np.int64)).sum()
    return LweCiphertext(to_torus(mask_acc), to_torus(body_acc))


def _seed_programmable_bootstrap(ct, test_poly, keyset):
    params = keyset.params
    a_tilde, b_tilde = modulus_switch(ct, params.N)
    acc = glwe_rotate(glwe_trivial(test_poly, params.k), -int(b_tilde))
    for i in range(params.n):
        t = int(a_tilde[i])
        if t == 0:
            continue
        acc = _seed_cmux(keyset.bsk[i], acc, glwe_rotate(acc, t))
    return _seed_key_switch(sample_extract(acc), keyset.ksk)


def test_batched_bootstrap_throughput(ctx, bench_record):
    """Batch-16 gate bootstraps >= 5x the seed per-sample path, bit-identical
    to the scalar path in the default complex128 mode."""
    from repro.tfhe import identity_test_polynomial

    p = 8
    msgs = [m % (p // 2) for m in range(16)]
    cts = [ctx.encrypt(m, p) for m in msgs]
    tp = identity_test_polynomial(ctx.params, p)
    ctx.keyset.bsk_spectrum_table("double")  # one-time eager pre-transform

    def timed(fn):
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def percentiles_ms(fn, rounds=12):
        """Tail-latency view: per-call wall times through a quantile
        sketch, the same estimator the SLO engine runs in production."""
        from repro.observability import QuantileSketch

        sketch = QuantileSketch()
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            sketch.add(time.perf_counter() - start)
        return {q: sketch.quantile(q) * 1e3 for q in (0.5, 0.95, 0.99)}

    seed_outs = [_seed_programmable_bootstrap(ct, tp, ctx.keyset) for ct in cts]
    seed_time = timed(
        lambda: [_seed_programmable_bootstrap(ct, tp, ctx.keyset) for ct in cts]
    )
    scalar_outs = [programmable_bootstrap(ct, tp, ctx.keyset) for ct in cts]
    scalar_time = timed(
        lambda: [programmable_bootstrap(ct, tp, ctx.keyset) for ct in cts]
    )
    batch_outs = programmable_bootstrap_batch(cts, tp, ctx.keyset)
    batch_time = timed(lambda: programmable_bootstrap_batch(cts, tp, ctx.keyset))
    batch_pcts = percentiles_ms(
        lambda: programmable_bootstrap_batch(cts, tp, ctx.keyset)
    )

    bit_identical = all(
        np.array_equal(b.a, s.a) and b.b == s.b
        for b, s in zip(batch_outs, scalar_outs)
    )
    assert bit_identical
    for m, seed_out, batch_out in zip(msgs, seed_outs, batch_outs):
        assert ctx.decrypt(seed_out, p) == m
        assert ctx.decrypt(batch_out, p) == m

    speedup = seed_time / batch_time
    assert speedup >= 5.0, (
        f"batch-16 only {speedup:.1f}x the seed per-sample path "
        f"({seed_time:.3f}s vs {batch_time:.3f}s for 16 bootstraps)"
    )
    bench_record(
        "tfhe_substrate@test",
        bit_identical=bit_identical,
        speedup_batch16=round(speedup, 2),
        seed_bootstraps_per_s=round(len(cts) / seed_time, 2),
        scalar_bootstraps_per_s=round(len(cts) / scalar_time, 2),
        batch16_bootstraps_per_s=round(len(cts) / batch_time, 2),
        # Tail latency of the batch-16 call (informational: _wall_ms
        # metrics are trend-watched, never compared across machines).
        batch16_p50_wall_ms=round(batch_pcts[0.5], 3),
        batch16_p95_wall_ms=round(batch_pcts[0.95], 3),
        batch16_p99_wall_ms=round(batch_pcts[0.99], 3),
    )
