"""Figure 1 bench: bootstrap operation/memory/CPU-time breakdown."""

from repro.analysis import count_bootstrap_operations
from repro.baselines import CpuCostModel
from repro.experiments import run_fig1
from repro.params import FIG1_PARAMS


def test_fig1_breakdown(benchmark, show):
    result = benchmark(run_fig1)
    show(result)
    shares = count_bootstrap_operations(FIG1_PARAMS).shares()
    # Shape: I/FFT dominates (~88%), KS ~2%, other ~1%.
    assert 0.85 < shares["ifft_fft"] < 0.93
    assert shares["key_switch"] < 0.05
    assert shares["other"] < 0.02


def test_fig1_cpu_time_shape(benchmark):
    cpu = CpuCostModel()
    t = benchmark(cpu.bootstrap_time, FIG1_PARAMS)
    # Shape: blind rotation dominates CPU time; KS non-negligible.
    assert t.blind_rotation_s > 4 * t.key_switch_s
    assert t.key_switch_s > 50 * t.other_s
