"""Figure 7-b bench: transform-domain reuse impact under equal resources."""

import pytest

from repro.baselines import equal_resource_variants
from repro.core.simulator import simulate_bootstrap
from repro.experiments import run_fig7b
from repro.params import get_params


def _ladder(pset):
    p = get_params(pset)
    out = {}
    for name, cfg in equal_resource_variants().items():
        r = simulate_bootstrap(cfg, p)
        out[name] = r.group_size / r.xpu_busy_s
    return out


def test_fig7b(benchmark, show):
    result = benchmark(run_fig7b)
    show(result)
    # Shape: input+output reuse speedup grows with (k, l_b):
    # paper 2.0x (A), 2.9x (B), 3.9x (C); ours 2.0 / 3.0 / 4.0.
    expectations = {"A": 2.0, "B": 3.0, "C": 4.0}
    for pset, expected in expectations.items():
        ladder = _ladder(pset)
        io_speedup = ladder["input+output-reuse"] / ladder["no-reuse"]
        assert io_speedup == pytest.approx(expected, rel=0.10), pset


def test_fig7b_ladder_monotone(benchmark):
    ladder = benchmark(_ladder, "B")
    values = list(ladder.values())
    # Shape: every added technique helps (no-reuse < input < in+out < +MS).
    assert values == sorted(values)
    # Shape: merge-split FFT adds a further speedup on top of in+out reuse.
    assert ladder["input+output-reuse+ms-fft"] > 1.15 * ladder["input+output-reuse"]
