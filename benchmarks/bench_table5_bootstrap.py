"""Table V bench: cross-platform bootstrap latency/throughput comparison.

This is the headline result: simulated Morphling vs every published
system, with the paper's speedup factors as the shape contract.
"""

import pytest

from repro.baselines import speedup_range
from repro.experiments import morphling_throughputs, run_table5


def test_table5(benchmark, show):
    result = benchmark(run_table5)
    show(result)
    thr = morphling_throughputs()
    # Shape: Morphling wins everywhere, by roughly the paper's factors.
    lo, hi = speedup_range(thr, "Concrete")
    assert 1800 < lo and hi < 4000  # paper: 2145-3439x
    lo, hi = speedup_range(thr, "NuFHE")
    assert 40 < lo and hi < 200  # paper: 60-144x
    _, matcha = speedup_range(thr, "MATCHA")
    assert matcha == pytest.approx(14.76, rel=0.15)  # paper: 14.76x
    strix, _ = speedup_range(thr, "Strix")
    assert strix == pytest.approx(1.98, rel=0.15)  # paper: 1.98x
    # Shape: within each platform class faster at smaller parameters.
    assert thr["I"] > thr["II"] > thr["III"]


def test_table5_latency_ordering(benchmark):
    thr = benchmark(morphling_throughputs)
    # Shape: set IV (l_b=1) outruns set III (l_b=3) despite same N.
    assert thr["IV"] > 2 * thr["III"]
