"""Figure 8-a bench: Private-A1 size sweep (the 4096 KB knee)."""

from repro.experiments import run_fig8a


def test_fig8a(benchmark, show):
    result = benchmark(run_fig8a)
    show(result)
    sizes = result.column("A1 (KB)")
    thr = result.column("throughput (BS/s)")
    by_size = dict(zip(sizes, thr))
    # Shape: degraded below 4096 KB, stable at and above it.
    assert by_size[2048] < by_size[4096]
    assert by_size[512] < by_size[2048]
    assert by_size[8192] == by_size[4096]
    assert by_size[16384] == by_size[4096]
    # Shape: throughput is monotone non-decreasing in buffer size.
    assert thr == sorted(thr)
