"""Benches for the extension features: unrolling, multi-LUT, NTT engine,
the pipeline trace, and the instruction encoding."""

import numpy as np
import pytest

from repro import TEST_PARAMS, TfheContext
from repro.core.accelerator import MorphlingConfig
from repro.core.isa_encoding import decode_stream, encode_stream
from repro.core.scheduler import LayerDemand, SwScheduler
from repro.core.trace import trace_blind_rotation
from repro.core.xpu import XpuModel
from repro.params import get_params
from repro.tfhe.multilut import multi_lut_bootstrap
from repro.tfhe.polynomial import poly_mul
from repro.tfhe.unrolled import unrolled_blind_rotation_tradeoff


@pytest.fixture(scope="module")
def ctx():
    return TfheContext.create(TEST_PARAMS, seed=13)


def test_unrolling_tradeoff(benchmark):
    t = benchmark(unrolled_blind_rotation_tradeoff, get_params("I"))
    # Shape: half the sequential latency for 1.5x the work and key size.
    assert t["latency_ratio"] == pytest.approx(0.5)
    assert t["work_ratio"] == pytest.approx(1.5)
    assert t["unrolled_bsk_bytes"] == pytest.approx(1.5 * t["plain_bsk_bytes"])


def test_multi_lut_amortization(benchmark, ctx):
    """Two functions from one blind rotation must cost well under two
    bootstraps."""
    import time

    luts = [lambda x: x, lambda x: (3 - x) % 4]
    ct = ctx.encrypt(1, 8)
    outs = benchmark(multi_lut_bootstrap, ct, luts, ctx.keyset, 8)
    assert [ctx.decrypt(o, 8) for o in outs] == [1, 2]

    start = time.perf_counter()
    for _ in range(5):
        multi_lut_bootstrap(ct, luts, ctx.keyset, 8)
    double = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(5):
        ctx.bootstrap(ct, 8)
        ctx.bootstrap(ct, 8)
    two_singles = time.perf_counter() - start
    assert double < 0.75 * two_singles


def test_ntt_engine_exactness_cost(benchmark):
    """The exact NTT engine is the slow-but-exact reference; the FFT engine
    must beat it (the trade Morphling's datapath embodies)."""
    import time

    rng = np.random.default_rng(0)
    small = rng.integers(-64, 64, size=256)
    big = rng.integers(0, 1 << 32, size=256, dtype=np.uint64).astype(np.uint32)
    benchmark(poly_mul, small, big, "ntt")
    start = time.perf_counter()
    for _ in range(10):
        poly_mul(small, big, engine="fft")
    fft_time = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(10):
        poly_mul(small, big, engine="ntt")
    ntt_time = time.perf_counter() - start
    assert fft_time < ntt_time


def test_pipeline_trace_consistency(benchmark):
    trace = benchmark(trace_blind_rotation, MorphlingConfig(), get_params("I"), 8)
    analytic = XpuModel(MorphlingConfig(), get_params("I")).iteration_cycles()
    assert trace.steady_state_interval() == pytest.approx(analytic)


def test_instruction_stream_density(benchmark):
    """Binary programs stay tiny next to the data they orchestrate."""
    sched = SwScheduler(MorphlingConfig(), get_params("I"))
    program = sched.schedule([LayerDemand("layer", 64 * 16)])
    blob = benchmark(encode_stream, program)
    assert decode_stream(blob) == list(program)
    data_bytes = sum(i.data_bytes for i in program)
    assert len(blob) < data_bytes / 1000  # instructions ≪ data
