"""Figure 8-b bench: XPU-count sweep (linear to 4, degraded beyond)."""

import pytest

from repro.experiments import run_fig8b


def test_fig8b(benchmark, show):
    result = benchmark(run_fig8b)
    show(result)
    thr = dict(zip(result.column("XPUs"), result.column("throughput (BS/s)")))
    bottleneck = dict(zip(result.column("XPUs"), result.column("bottleneck")))
    # Shape: linear scaling from 1 to 4 XPUs.
    assert thr[2] == pytest.approx(2 * thr[1], rel=0.05)
    assert thr[4] == pytest.approx(4 * thr[1], rel=0.05)
    # Shape: the crossover falls at 4 - the 5th XPU *hurts*.
    assert thr[5] < thr[4]
    # Shape: past four XPUs the machine is external-bandwidth limited.
    for n in (5, 6, 8):
        assert bottleneck[n] == "bsk_bandwidth"
    # Shape: per-XPU efficiency collapses past the knee.
    per_xpu = dict(zip(result.column("XPUs"), result.column("per-XPU (BS/s)")))
    assert per_xpu[5] < 0.6 * per_xpu[4]
