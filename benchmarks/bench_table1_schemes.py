"""Table I bench: scheme parameter profiles."""

from repro.experiments import run_table1


def test_table1(benchmark, show):
    result = benchmark(run_table1)
    show(result)
    families = dict(zip(result.column("scheme"), result.column("family")))
    # Shape: TFHE is the small-parameter family, everything else large.
    assert families["TFHE"] == "small"
    assert all(families[s] == "large" for s in ("CKKS", "BGV", "BFV"))
    rns = dict(zip(result.column("scheme"), result.column("needs RNS")))
    assert rns["TFHE"] == "no"
