"""Multi-worker pool scaling bench (``repro.pool``).

Measures sharded batch-16 bootstrap throughput at 1/2/4 workers against
the single-process baseline, using the real :class:`BootstrapPool`
(shared-memory BSK spectrum, forked lanes, ordered reassembly).

Two modes, so the committed scaling floors are enforced exactly where
they are meaningful:

- **enforcing** (default, the bench machine): with >= 4 CPUs the
  2-worker and 4-worker scaling ratios must meet ``SCALING_FLOORS`` and
  are recorded as ``scaling_workers<N>`` for the baseline checker
  (which treats ``scaling_*`` as conditional floors);
- **informational** (``REPRO_BENCH_INFORMATIONAL=1``, or machines with
  fewer CPUs than a row's worker count): throughput is still recorded
  (``workers<N>_bootstraps_per_s`` are ``_per_s`` trend metrics) but
  the unenforceable ``scaling_*`` values are recorded as ``null`` so
  the checker reports a note instead of a bogus violation.

The CI ``pool-scaling`` job runs this in informational mode (shared
runners make no scaling promises); the committed floors in
``baselines/BENCH_tfhe.json`` bind on the bench machine.
"""

import os

from repro.pool import leaked_segments, run_pool_scaling

WORKER_COUNTS = (1, 2, 4)

#: Minimum scaling ratio (pool throughput / single-process throughput)
#: per worker count, enforced when the machine can parallelize.
SCALING_FLOORS = {2: 1.5, 4: 2.5}


def _informational() -> bool:
    return os.environ.get("REPRO_BENCH_INFORMATIONAL", "") not in ("", "0")


def test_pool_scaling_throughput(bench_record):
    """1/2/4-worker sharded batch-16 throughput, floors where enforceable."""
    result = run_pool_scaling(
        param_set="test", workers=WORKER_COUNTS, batch=16, rounds=3,
    )
    assert leaked_segments() == [], "pool leaked shared-memory segments"

    cpus = os.cpu_count() or 1
    informational = _informational()
    metrics = {
        "backend": result.backend,
        "pool_batch": result.batch,
        "single_bootstraps_per_s": round(result.single_bootstraps_per_s, 2),
    }
    for entry in result.entries:
        n = entry["workers"]
        scaling = entry["scaling"]
        metrics[f"workers{n}_bootstraps_per_s"] = round(
            entry["bootstraps_per_s"], 2
        )
        enforceable = (not informational) and cpus >= n
        floor = SCALING_FLOORS.get(n)
        if floor is not None:
            # Only floored counts get a scaling_* metric: a floorless
            # measured ratio in the baseline would act as an accidental
            # floor on the bench machine.
            metrics[f"scaling_workers{n}"] = (
                round(scaling, 2) if enforceable else None
            )
        if enforceable and floor is not None:
            assert scaling >= floor, (
                f"{n}-worker pool only {scaling:.2f}x the single process "
                f"({entry['bootstraps_per_s']:.1f} vs "
                f"{result.single_bootstraps_per_s:.1f} bootstraps/s) - "
                f"floor is {floor}x"
            )
    bench_record("tfhe_pool@test", **metrics)
