#!/usr/bin/env sh
# Regenerate the committed bench-regression baseline in one command:
#
#   benchmarks/refresh_baseline.sh
#
# Run it whenever a deliberate model/counter change moves the canonical
# numbers, then commit the updated baselines/BENCH_core.json together
# with the change that moved them.
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH=src python -m pytest benchmarks/bench_core_perf.py -q \
    --bench-json benchmarks/baselines/BENCH_core.json
echo "refreshed benchmarks/baselines/BENCH_core.json"
