"""Ablation bench: VPE-array dataflow choice (Section IV-B).

The paper argues ACC-output-stationary wins because the alternatives
double the Private-A1 footprint (transform-domain partial sums) and
BSK-stationary adds ciphertext streaming pressure.
"""

from repro.core.accelerator import MorphlingConfig
from repro.core.dataflow import Dataflow, dataflow_cost, rank_dataflows
from repro.params import get_params


def test_dataflow_ablation(benchmark):
    cfg, p = MorphlingConfig(), get_params("I")
    ranking = benchmark(rank_dataflows, cfg, p)
    # Shape: the paper's choice ranks first.
    assert ranking[0].dataflow is Dataflow.OUTPUT_STATIONARY
    # Shape: output-stationary dominates input-stationary outright.
    out = dataflow_cost(Dataflow.OUTPUT_STATIONARY, cfg, p)
    inp = dataflow_cost(Dataflow.INPUT_STATIONARY, cfg, p)
    assert out.dominates(inp)
    # Shape: the alternatives roughly double (or worse) the A1 footprint.
    assert inp.a1_bytes_per_ciphertext >= 2 * out.a1_bytes_per_ciphertext
    # Shape: BSK-stationary multiplies external ciphertext traffic.
    bsk = dataflow_cost(Dataflow.BSK_STATIONARY, cfg, p)
    assert bsk.external_bytes_per_iteration > out.external_bytes_per_iteration


def test_dataflow_shape_holds_across_sets(benchmark):
    cfg = MorphlingConfig()

    def rank_all():
        return [rank_dataflows(cfg, get_params(s))[0].dataflow for s in
                ("I", "II", "III", "IV", "A", "B", "C")]

    winners = benchmark(rank_all)
    assert all(w is Dataflow.OUTPUT_STATIONARY for w in winners)
