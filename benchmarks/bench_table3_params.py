"""Table III bench: parameter sets and their key-material footprints."""

from repro.experiments import run_table3
from repro.params import PARAM_SETS


def test_table3(benchmark, show):
    result = benchmark(run_table3)
    show(result)
    assert result.column("set") == ["I", "II", "III", "IV", "A", "B", "C"]
    # Shape: the paper's (N, n, k, l_b) verbatim.
    assert PARAM_SETS["I"].N == 1024 and PARAM_SETS["I"].n == 500
    assert PARAM_SETS["C"].k == 3 and PARAM_SETS["C"].l_b == 3
    # Shape: every k=1 128-bit set uses N >= 2048 (security scaling).
    for name in ("III", "IV", "A"):
        assert PARAM_SETS[name].N >= 2048
