"""Table VI bench: application execution time, Morphling vs 64-core CPU."""

from repro.experiments import run_table6


def test_table6(benchmark, show):
    result = benchmark(run_table6)
    show(result)
    morphling = dict(zip(result.column("application"), result.column("Morphling (s)")))
    cpu = dict(zip(result.column("application"), result.column("CPU (s)")))
    # Shape: Morphling wins everywhere by ~100x (paper: 88-144x).
    for app in morphling:
        speedup = cpu[app] / morphling[app]
        assert 80 < speedup < 160, (app, speedup)
    # Shape: sub-second latency for every model except DeepCNN-50/100.
    assert morphling["XG-Boost"] < 0.1
    assert morphling["VGG-9"] < 1.0
    # Shape: DeepCNN scales linearly in trunk depth.
    d20, d50, d100 = (morphling[f"DeepCNN-{x}"] for x in (20, 50, 100))
    per_layer_a = (d50 - d20) / 30
    per_layer_b = (d100 - d50) / 50
    assert abs(per_layer_a - per_layer_b) < 0.15 * per_layer_a
    # Shape: ordering matches the paper (XG-Boost fastest, DeepCNN-100 slowest).
    assert morphling["XG-Boost"] < morphling["DeepCNN-20"] < morphling["DeepCNN-100"]
