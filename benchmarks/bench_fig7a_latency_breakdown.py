"""Figure 7-a bench: per-component latency breakdown."""

from repro.core.accelerator import MorphlingConfig
from repro.core.simulator import simulate_bootstrap
from repro.experiments import run_fig7a
from repro.params import get_params


def test_fig7a(benchmark, show):
    result = benchmark(run_fig7a)
    show(result)
    # Shape: the XPU dominates (paper: 88-93%; set IV is our weakest at 73%).
    for pset in ("I", "II", "III"):
        fr = simulate_bootstrap(MorphlingConfig(), get_params(pset)).latency_fractions()
        assert fr["xpu_blind_rotation"] > 0.85
    fr = simulate_bootstrap(MorphlingConfig(), get_params("IV")).latency_fractions()
    assert fr["xpu_blind_rotation"] > 0.70
    # Shape: among the VPU stages KS dominates; MS/SE are negligible.
    assert fr["vpu_key_switch"] > 20 * fr["vpu_modulus_switch"]
