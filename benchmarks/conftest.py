"""Benchmark harness configuration.

Every bench regenerates one paper table/figure via its experiment driver,
prints the regenerated rows (``-s`` to see them), and asserts the
paper-shape invariants (who wins, by roughly what factor, where the
crossovers fall).

Regression collection: running with ``--bench-json PATH`` makes the
``bench_record`` fixture collect named metric dicts across the session
and write them as one schema-versioned JSON document at exit
(``BENCH_core.json`` in CI).  ``check_bench_regression.py`` compares
such a document against the committed baseline under ``baselines/``
with per-metric tolerances; ``refresh_baseline.sh`` regenerates the
baseline in one command.
"""

import json

import pytest

#: Bump on any incompatible change to the collected document's shape.
BENCH_SCHEMA_VERSION = 1


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", default=None, metavar="PATH",
        help="write metrics collected via the bench_record fixture to "
             "PATH as schema-versioned JSON",
    )


def pytest_configure(config):
    config._bench_entries = {}


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json")
    if not path:
        return
    document = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "entries": dict(sorted(session.config._bench_entries.items())),
    }
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.fixture()
def bench_record(request):
    """Record one named metrics dict into the ``--bench-json`` document.

    Call as ``bench_record("morphling@I", throughput_bs=..., ...)``.
    Recording the same name twice in one session is an error (it would
    silently drop one benchmark's numbers).
    """
    entries = request.config._bench_entries

    def _record(name, **metrics):
        if name in entries:
            raise ValueError(f"bench entry {name!r} recorded twice")
        entries[name] = dict(sorted(metrics.items()))

    return _record


@pytest.fixture()
def show(capsys):
    """Print a regenerated experiment table to the terminal."""

    def _show(result):
        with capsys.disabled():
            print()
            print(result.to_text())

    return _show
