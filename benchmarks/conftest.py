"""Benchmark harness configuration.

Every bench regenerates one paper table/figure via its experiment driver,
prints the regenerated rows (``-s`` to see them), and asserts the
paper-shape invariants (who wins, by roughly what factor, where the
crossovers fall).
"""

import pytest


@pytest.fixture()
def show(capsys):
    """Print a regenerated experiment table to the terminal."""

    def _show(result):
        with capsys.disabled():
            print()
            print(result.to_text())

    return _show
