"""Ablation bench: double-pointer rotation vs variable-delay shifter
(Section V-C).  The double pointer keeps the pipeline stall-free."""

from repro.core.accelerator import MorphlingConfig
from repro.core.simulator import simulate_bootstrap
from repro.params import get_params


def _both(pset):
    p = get_params(pset)
    dp = simulate_bootstrap(MorphlingConfig(rotator="double_pointer"), p)
    sh = simulate_bootstrap(MorphlingConfig(rotator="shifter"), p)
    return dp, sh


def test_rotator_ablation(benchmark):
    dp, sh = benchmark(_both, "I")
    # Shape: the shifter's variable latency costs real throughput.
    assert dp.throughput_bs > sh.throughput_bs
    assert dp.bootstrap_latency_s < sh.bootstrap_latency_s
    # Shape: the stall overhead is a double-digit-percent effect.
    assert dp.throughput_bs / sh.throughput_bs > 1.10


def test_rotator_penalty_grows_with_n(benchmark):
    def penalties():
        out = {}
        for pset in ("I", "III"):
            dp, sh = _both(pset)
            out[pset] = dp.throughput_bs / sh.throughput_bs
        return out

    pen = benchmark(penalties)
    assert pen["I"] > 1.0 and pen["III"] > 1.0
