"""Ablation bench: BSK/KSK reuse factors vs HBM pressure (Section IV-C).

The paper's 64x BSK reuse (4 VPE rows x 4 XPUs x 4 resident streams) is
what keeps the default build compute-bound on two HBM channels.
"""

from repro.core.accelerator import MorphlingConfig
from repro.core.hbm import HbmModel
from repro.core.simulator import simulate_bootstrap
from repro.params import get_params


def test_bsk_reuse_keeps_design_compute_bound(benchmark):
    p = get_params("I")
    hbm = HbmModel(MorphlingConfig())

    def rates():
        return {reuse: hbm.sustainable_bootstrap_rate(p, reuse, 64)
                for reuse in (1, 4, 16, 64)}

    by_reuse = benchmark(rates)
    # Shape: rate scales ~linearly with the BSK reuse factor.
    assert by_reuse[64] > 15 * by_reuse[4]
    # Shape: at 64x reuse the memory outruns the 147k BS/s compute rate;
    # at 16x it cannot keep up (the crossover the A1 buffer pays for).
    compute = simulate_bootstrap(MorphlingConfig(), p).throughput_bs
    assert by_reuse[64] > compute
    assert by_reuse[16] < compute


def test_ksk_channel_priority(benchmark):
    """The 6-channel VPU allocation keeps key switching off the critical path."""
    p = get_params("I")

    def report():
        return simulate_bootstrap(MorphlingConfig(), p)

    r = benchmark(report)
    assert r.ksk_transfer_s < r.xpu_busy_s
    # Shape: stealing the VPU channels for the XPU would starve the KSK.
    starved = MorphlingConfig(xpu_hbm_channels=7, vpu_hbm_channels=1)
    s = simulate_bootstrap(starved, p)
    assert s.ksk_transfer_s > r.ksk_transfer_s * 3
