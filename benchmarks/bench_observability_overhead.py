"""Benchmark guard: disabled telemetry must cost < 5% on gate bootstraps.

Every instrumented site guards itself with a single ``registry.enabled``
(or ``tracer.enabled``) read-and-branch, so with telemetry off the code
path is the uninstrumented one plus those checks.  This bench verifies
the guarantee two ways on a gate-bootstrap loop (the hottest functional
path: ``n`` CMux iterations, each several batched FFTs):

1. *Analytic bound*: count the enabled-checks one gate bootstrap actually
   performs (by swapping in probe registry/tracer classes whose
   ``enabled`` attribute is a counting property that still reports
   False), measure the per-check cost in a tight loop, and assert
   ``checks x cost_per_check < 5%`` of the measured bootstrap time.
2. *A/B sanity*: time the loop with telemetry disabled vs enabled and
   print both (informational - wall-clock A/B on equal code paths is too
   noisy to gate on, the analytic bound is the contract).

Run directly (``python benchmarks/bench_observability_overhead.py``) or
via pytest.
"""

import time
import tracemalloc

import numpy as np

from repro import TEST_PARAMS, observability as obs
from repro.observability.bus import TelemetryBus
from repro.observability.counters import PerfCounters
from repro.observability.flightrec import FlightRecorder
from repro.observability.noise import NoiseTracker
from repro.observability.registry import MetricsRegistry
from repro.observability.tracer import Tracer
from repro.tfhe import TfheContext
from repro.tfhe.gatebootstrap import encrypt_bool, nand_gate

MAX_DISABLED_OVERHEAD = 0.05


class _ProbeRegistry(MetricsRegistry):
    """Registry whose ``enabled`` read is counted (and always False)."""

    checks = 0

    @property
    def enabled(self):
        _ProbeRegistry.checks += 1
        return False

    @enabled.setter
    def enabled(self, value):
        pass


class _ProbeTracer(Tracer):
    checks = 0

    @property
    def enabled(self):
        _ProbeTracer.checks += 1
        return False

    @enabled.setter
    def enabled(self, value):
        pass


class _ProbeCounters(PerfCounters):
    """Perf-counter bank whose ``enabled`` read is counted (always False)."""

    checks = 0

    @property
    def enabled(self):
        _ProbeCounters.checks += 1
        return False

    @enabled.setter
    def enabled(self, value):
        pass


class _ProbeNoise(NoiseTracker):
    """Noise tracker whose ``enabled`` read is counted (always False)."""

    checks = 0

    @property
    def enabled(self):
        _ProbeNoise.checks += 1
        return False

    @enabled.setter
    def enabled(self, value):
        pass


class _ProbeBus(TelemetryBus):
    """Telemetry bus whose ``enabled`` read is counted (always False)."""

    checks = 0

    @property
    def enabled(self):
        _ProbeBus.checks += 1
        return False

    @enabled.setter
    def enabled(self, value):
        pass


class _ProbeFlight(FlightRecorder):
    """Flight recorder whose ``enabled`` read is counted (always False)."""

    checks = 0

    @property
    def enabled(self):
        _ProbeFlight.checks += 1
        return False

    @enabled.setter
    def enabled(self, value):
        pass


def _count_enabled_checks(run_once) -> int:
    """How many telemetry enabled-checks one gate bootstrap performs."""
    _ProbeRegistry.checks = _ProbeTracer.checks = 0
    _ProbeCounters.checks = _ProbeNoise.checks = 0
    _ProbeBus.checks = _ProbeFlight.checks = 0
    obs.REGISTRY.__class__ = _ProbeRegistry
    obs.TRACER.__class__ = _ProbeTracer
    obs.COUNTERS.__class__ = _ProbeCounters
    obs.NOISE.__class__ = _ProbeNoise
    obs.BUS.__class__ = _ProbeBus
    obs.FLIGHT.__class__ = _ProbeFlight
    try:
        run_once()
        return (_ProbeRegistry.checks + _ProbeTracer.checks
                + _ProbeCounters.checks + _ProbeNoise.checks
                + _ProbeBus.checks + _ProbeFlight.checks)
    finally:
        obs.REGISTRY.__class__ = MetricsRegistry
        obs.TRACER.__class__ = Tracer
        obs.COUNTERS.__class__ = PerfCounters
        obs.NOISE.__class__ = NoiseTracker
        obs.BUS.__class__ = TelemetryBus
        obs.FLIGHT.__class__ = FlightRecorder
        obs.REGISTRY.enabled = False
        obs.TRACER.enabled = False
        obs.COUNTERS.enabled = False
        obs.NOISE.enabled = False
        obs.BUS.enabled = False
        obs.FLIGHT.enabled = False


def _per_check_seconds(iterations: int = 200_000) -> float:
    """Cost of one disabled-counter update (the whole disabled hot path)."""
    reg = MetricsRegistry(enabled=False)
    counter = reg.counter("probe_total")
    start = time.perf_counter()
    for _ in range(iterations):
        counter.inc()
    return (time.perf_counter() - start) / iterations


def _time_loop(run_once, repeats: int = 3, loops: int = 4) -> float:
    """Best-of-``repeats`` seconds per call for a ``loops``-long run."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(loops):
            run_once()
        best = min(best, (time.perf_counter() - start) / loops)
    return best


def test_disabled_instrumentation_overhead_under_5_percent():
    ctx = TfheContext.create(TEST_PARAMS, seed=11)
    rng = np.random.default_rng(42)
    a = encrypt_bool(1, ctx.keyset, rng)
    b = encrypt_bool(0, ctx.keyset, rng)

    def one_gate_bootstrap():
        nand_gate(a, b, ctx.keyset)

    obs.disable()
    checks = _count_enabled_checks(one_gate_bootstrap)
    per_check = _per_check_seconds()
    disabled = _time_loop(one_gate_bootstrap)

    overhead = checks * per_check
    fraction = overhead / disabled
    obs.enable()
    try:
        enabled = _time_loop(one_gate_bootstrap)
    finally:
        obs.disable()
        obs.reset()

    print(
        f"\n  gate bootstrap: {disabled * 1e3:.2f} ms telemetry-off, "
        f"{enabled * 1e3:.2f} ms telemetry-on\n"
        f"  enabled-checks/bootstrap: {checks}, "
        f"{per_check * 1e9:.0f} ns/check -> "
        f"{fraction:.3%} of the disabled run (limit {MAX_DISABLED_OVERHEAD:.0%})"
    )
    assert checks > 0, "instrumentation sites vanished - nothing was measured"
    assert fraction < MAX_DISABLED_OVERHEAD


def test_disabled_counters_allocate_nothing_on_simulator_hot_path():
    """With the perf counters off the simulator must not touch them at all.

    Stronger than the timing bound: ``tracemalloc`` filtered to the
    counters module proves the disabled path allocates *zero* objects
    there across a full simulator run - the single read-and-branch
    discipline, enforced.
    """
    from repro.core.accelerator import MorphlingConfig
    from repro.core.simulator import simulate_bootstrap
    from repro.params import get_params

    config, params = MorphlingConfig(), get_params("I")
    simulate_bootstrap(config, params)  # warm caches outside the trace
    obs.disable()
    counters_file = obs.COUNTERS.__class__.__module__.replace(".", "/")
    tracemalloc.start()
    try:
        simulate_bootstrap(config, params)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    stats = snapshot.filter_traces(
        [tracemalloc.Filter(True, f"*{counters_file.rsplit('/', 1)[-1]}.py")]
    ).statistics("filename")
    blocks = sum(stat.count for stat in stats)
    assert blocks == 0, (
        f"disabled perf counters allocated {blocks} blocks: {stats}"
    )


def test_disabled_noise_tracker_allocates_nothing_on_gate_path():
    """With tracking off the tfhe gate path must not touch the tracker.

    Same contract as the counters: ``tracemalloc`` filtered to the noise
    module proves a full gate bootstrap (encrypt -> linear ops ->
    bootstrap -> decode) allocates *zero* objects there while disabled.
    """
    ctx = TfheContext.create(TEST_PARAMS, seed=11)
    x, y = ctx.encrypt(1), ctx.encrypt(0)
    ctx.decrypt(ctx.gate("nand", x, y))  # warm caches outside the trace
    obs.disable()
    tracemalloc.start()
    try:
        ctx.decrypt(ctx.gate("nand", ctx.encrypt(1), ctx.encrypt(0)))
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    stats = snapshot.filter_traces(
        [tracemalloc.Filter(True, "*observability/noise.py")]
    ).statistics("filename")
    blocks = sum(stat.count for stat in stats)
    assert blocks == 0, (
        f"disabled noise tracker allocated {blocks} blocks: {stats}"
    )


def test_disabled_bus_allocates_nothing_on_gate_and_simulator_paths():
    """With the bus off, neither hot path may allocate in bus.py.

    The publish hooks live inside the four systems' already-enabled
    paths plus a handful of direct ``if _BUS.enabled`` sites (batched
    bootstrap, simulator/scheduler reports) - with telemetry disabled
    none of them may construct an event, take the lock, or touch a
    subscriber tuple.
    """
    from repro.core.accelerator import MorphlingConfig
    from repro.core.simulator import simulate_bootstrap
    from repro.params import get_params

    ctx = TfheContext.create(TEST_PARAMS, seed=11)
    config, params = MorphlingConfig(), get_params("I")
    ctx.decrypt(ctx.gate("nand", ctx.encrypt(1), ctx.encrypt(0)))  # warm
    simulate_bootstrap(config, params)  # warm
    obs.disable()
    tracemalloc.start()
    try:
        ctx.decrypt(ctx.gate("nand", ctx.encrypt(1), ctx.encrypt(0)))
        simulate_bootstrap(config, params)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    stats = snapshot.filter_traces(
        [tracemalloc.Filter(True, "*observability/bus.py")]
    ).statistics("filename")
    blocks = sum(stat.count for stat in stats)
    assert blocks == 0, f"disabled bus allocated {blocks} blocks: {stats}"


def test_disabled_flight_recorder_allocates_nothing():
    """The recorder's subscriber must be a pure read-and-branch when off.

    The recorder stays subscribed to the bus at all times ("always-on"),
    so its disabled cost is paid on *every* published event - prove the
    whole workload run allocates zero blocks in flightrec.py while the
    recorder is off (bus off too: the common production state).
    """
    from repro.core.accelerator import MorphlingConfig
    from repro.core.scheduler import LayerDemand, run_workload
    from repro.params import get_params

    config, params = MorphlingConfig(), get_params("I")
    layers = [LayerDemand("bench", bootstraps=128)]
    run_workload(config, params, layers)  # warm caches outside the trace
    obs.disable()
    tracemalloc.start()
    try:
        run_workload(config, params, layers)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    stats = snapshot.filter_traces(
        [tracemalloc.Filter(True, "*observability/flightrec.py")]
    ).statistics("filename")
    blocks = sum(stat.count for stat in stats)
    assert blocks == 0, (
        f"disabled flight recorder allocated {blocks} blocks: {stats}"
    )


def test_disabled_slo_instrumentation_allocates_nothing():
    """With telemetry off the request-latency sites must stay untouched.

    The SLO engine adds quantile-metric observes and ``"request"`` bus
    publishes to the scheduler, simulator and tfhe bootstrap hot paths -
    all behind the same single read-and-branch.  ``tracemalloc`` filtered
    to sketch.py and slo.py proves a full scheduled workload plus a
    batched bootstrap allocates *zero* objects in either module while
    disabled - even with an (idle, detached-bus) monitor constructed.
    """
    from repro.core.accelerator import MorphlingConfig
    from repro.core.scheduler import LayerDemand, run_workload
    from repro.observability.slo import SLORegistry
    from repro.params import get_params

    ctx = TfheContext.create(TEST_PARAMS, seed=11)
    config, params = MorphlingConfig(), get_params("I")
    layers = [LayerDemand("bench", bootstraps=128)]
    run_workload(config, params, layers)  # warm caches outside the trace
    ctx.decrypt(ctx.gate("nand", ctx.encrypt(1), ctx.encrypt(0)))  # warm
    slos = SLORegistry()
    slos.latency("p99", 0.99, 1.0)
    obs.disable()
    tracemalloc.start()
    try:
        run_workload(config, params, layers)
        ctx.decrypt(ctx.gate("nand", ctx.encrypt(1), ctx.encrypt(0)))
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    stats = snapshot.filter_traces([
        tracemalloc.Filter(True, "*observability/sketch.py"),
        tracemalloc.Filter(True, "*observability/slo.py"),
    ]).statistics("filename")
    blocks = sum(stat.count for stat in stats)
    assert blocks == 0, (
        f"disabled SLO instrumentation allocated {blocks} blocks: {stats}"
    )


def test_disabled_trace_context_allocates_nothing_on_hot_paths():
    """The distributed-identity stamp must be free while telemetry is off.

    The bus consults :mod:`repro.observability.context` (ambient trace
    context + worker id) only *after* its ``enabled`` check passed, and
    the tracer resolves its span context behind the same branch -
    ``tracemalloc`` filtered to context.py and distrib.py proves a gate
    bootstrap plus a simulator run allocates *zero* objects in either
    module while disabled, even inside an active trace context.
    """
    from repro.core.accelerator import MorphlingConfig
    from repro.core.simulator import simulate_bootstrap
    from repro.observability import context
    from repro.params import get_params

    ctx = TfheContext.create(TEST_PARAMS, seed=11)
    config, params = MorphlingConfig(), get_params("I")
    ctx.decrypt(ctx.gate("nand", ctx.encrypt(1), ctx.encrypt(0)))  # warm
    simulate_bootstrap(config, params)  # warm
    root = context.start_trace()  # allocated outside the trace window
    obs.disable()
    with context.use_context(root):
        tracemalloc.start()
        try:
            ctx.decrypt(ctx.gate("nand", ctx.encrypt(1), ctx.encrypt(0)))
            simulate_bootstrap(config, params)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
    stats = snapshot.filter_traces([
        tracemalloc.Filter(True, "*observability/context.py"),
        tracemalloc.Filter(True, "*observability/distrib.py"),
    ]).statistics("filename")
    blocks = sum(stat.count for stat in stats)
    assert blocks == 0, (
        f"disabled trace-context stamping allocated {blocks} blocks: {stats}"
    )


def test_counter_recording_is_deterministic_across_runs():
    """Two identical simulator runs must produce byte-identical digests."""
    from repro.core.accelerator import MorphlingConfig
    from repro.core.simulator import simulate_bootstrap
    from repro.params import get_params

    config, params = MorphlingConfig(), get_params("II")
    digests = []
    for _ in range(2):
        with obs.counting() as bank:
            simulate_bootstrap(config, params)
            digests.append(bank.digest())
    assert digests[0] == digests[1]


if __name__ == "__main__":
    test_disabled_instrumentation_overhead_under_5_percent()
    test_disabled_counters_allocate_nothing_on_simulator_hot_path()
    test_disabled_noise_tracker_allocates_nothing_on_gate_path()
    test_disabled_bus_allocates_nothing_on_gate_and_simulator_paths()
    test_disabled_flight_recorder_allocates_nothing()
    test_disabled_slo_instrumentation_allocates_nothing()
    test_disabled_trace_context_allocates_nothing_on_hot_paths()
    test_counter_recording_is_deterministic_across_runs()
    print("overhead guard: OK")
