"""Figure 3 bench: domain-transform reduction per reuse type."""

from repro.core.reuse import ReuseType, reduction_vs_no_reuse, transforms_per_bootstrap
from repro.experiments import run_fig3
from repro.params import get_params


def test_fig3(benchmark, show):
    result = benchmark(run_fig3)
    show(result)
    # Shape: the paper's headline counts are exact.
    assert transforms_per_bootstrap(get_params("C"), ReuseType.NO_REUSE).total == 46752
    assert reduction_vs_no_reuse(1, 1, ReuseType.INPUT_REUSE) == 0.25
    assert reduction_vs_no_reuse(3, 3, ReuseType.INPUT_REUSE) == 0.375
    assert abs(reduction_vs_no_reuse(3, 3, ReuseType.INPUT_OUTPUT_REUSE) - 5 / 6) < 1e-12
    # Shape: reduction grows with (k, l_b).
    reductions = [
        reduction_vs_no_reuse(k, k, ReuseType.INPUT_OUTPUT_REUSE) for k in (1, 2, 3)
    ]
    assert reductions == sorted(reductions)
