"""Figures 2 and 6 benches: dataflow placement and co-scheduled execution."""

from repro.experiments import run_fig2, run_fig6


def test_fig2(benchmark, show):
    result = benchmark(run_fig2)
    show(result)
    per_vpe = [float(x) for x in result.column("transforms per VPE")]
    # Shape: each reuse step strictly lowers the per-VPE transform load.
    assert per_vpe == sorted(per_vpe, reverse=True)
    fwd = result.column("forward F")
    # Shape: input reuse divides forward transforms by k+1 (=3 here).
    assert fwd[0] == 3 * fwd[1]


def test_fig6(benchmark, show):
    result = benchmark(run_fig6)
    show(result)
    engines = set(result.column("engine"))
    # Shape: all engine classes participate.
    assert "xpu" in engines and "dma_xpu" in engines
    assert any(e.startswith("vpu") for e in engines)
    # Shape: the XPU runs the groups back to back (full pipelining): each
    # group's blind rotation starts when the previous one ends.
    brs = sorted(
        (row for row in result.rows if row[1] == "blind_rotate"),
        key=lambda r: r[3],
    )
    for prev, cur in zip(brs, brs[1:]):
        assert abs(cur[3] - prev[4]) < 0.02  # ms
    # Shape: DMA prefetch finishes before the dependent blind rotation.
    bsk_loads = [row for row in result.rows if row[1] == "load_bsk"]
    assert min(b[4] for b in bsk_loads) <= brs[0][3] + 1e-9
