"""Core performance benchmarks for the regression harness.

One entry per canonical (configuration, parameter set) pair: throughput,
latency, bottleneck, scheduler shape, and the perf-counter digest of the
simulated steady-state group.  With ``--bench-json`` the session writes
them to a schema-versioned document that CI diffs against the committed
baseline (``baselines/BENCH_core.json``) via ``check_bench_regression.py``
- the digest catches *any* silent change to the modelled work, while the
tolerance-checked float metrics allow benign numeric noise.
"""

import pytest

from repro.core.accelerator import MorphlingConfig
from repro.core.simulator import simulate_bootstrap
from repro.observability import counting
from repro.params import get_params

_CONFIGS = {
    "morphling": MorphlingConfig.morphling,
    "no-reuse": MorphlingConfig.no_reuse,
    "input-reuse": MorphlingConfig.input_reuse,
}

#: The canonical config x params grid the baseline pins down: the shipped
#: build across every Table III set, plus the Fig. 7-b ablation variants
#: on the 128-bit set III.
CANONICAL_PAIRS = [
    ("morphling", "I"),
    ("morphling", "II"),
    ("morphling", "III"),
    ("morphling", "IV"),
    ("no-reuse", "III"),
    ("input-reuse", "III"),
]


@pytest.mark.parametrize("config_name,param_set", CANONICAL_PAIRS)
def test_core_perf(config_name, param_set, bench_record):
    config = _CONFIGS[config_name]()
    params = get_params(param_set)
    with counting() as bank:
        report = simulate_bootstrap(config, params)
        digest = bank.digest()

    assert report.throughput_bs > 0
    assert report.bootstrap_latency_s > 0
    assert report.group_size >= 1

    bench_record(
        f"{config_name}@{param_set}",
        throughput_bs=report.throughput_bs,
        bootstrap_latency_ms=report.bootstrap_latency_ms,
        bottleneck=report.bottleneck,
        group_size=report.group_size,
        acc_streams=report.acc_streams,
        bsk_reuse=report.bsk_reuse,
        ksk_reuse=report.ksk_reuse,
        counters_digest=digest,
    )
