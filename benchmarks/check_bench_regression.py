"""Compare a collected bench document against the committed baseline.

Usage (what the CI bench-regression job runs)::

    python -m pytest benchmarks/bench_core_perf.py --bench-json BENCH_core.json
    python benchmarks/check_bench_regression.py \
        --baseline benchmarks/baselines/BENCH_core.json \
        --current BENCH_core.json

Per-metric policy:

- float metrics (``throughput_bs``, ``bootstrap_latency_ms``) compare
  within a relative tolerance (default 1%) - the models are analytic, so
  anything beyond numeric noise is a real behaviour change;
- floor metrics (``speedup_batch16``) treat the baseline as a minimum the
  current run must meet or beat - wall-clock speedups vary by machine, so
  only a drop below the floor is a regression;
- informational metrics (anything ending in ``_per_s`` or ``_wall_ms``)
  are collected for trend-watching but never compared - absolute
  wall-clock throughput and latency percentiles are machine-dependent
  (both sides must still *have* the metric);
- structural metrics (``bottleneck``, ``group_size``, reuse factors) and
  the perf-counter ``counters_digest`` must match exactly;
- the entry sets and ``schema_version`` must match exactly (a missing or
  extra entry is a harness change that needs a deliberate baseline
  refresh, not a silent pass).

Exit status 0 when everything matches, 1 with a per-violation report
otherwise.  Refresh the baseline with ``benchmarks/refresh_baseline.sh``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

#: Relative tolerance for float-valued metrics.
DEFAULT_REL_TOL = 0.01

#: Metrics compared within the relative tolerance; everything else in an
#: entry (strings, counts, digests) must match exactly.
TOLERANT_METRICS = ("throughput_bs", "bootstrap_latency_ms")

#: Metrics where the baseline is a floor: current must be >= baseline.
FLOOR_METRICS = ("speedup_batch16",)

#: Metrics recorded for trend-watching only; values are never compared
#: (wall-clock throughput and latency percentiles are machine-dependent).
#: New wall-clock metrics must use ``_wall_ms``, never bare ``_ms`` - the
#: informational check runs before the tolerant one, so a ``_ms`` suffix
#: would silently demote tolerant metrics like ``bootstrap_latency_ms``.
INFORMATIONAL_SUFFIXES = ("_per_s", "_wall_ms")


def compare_documents(
    baseline: dict, current: dict, rel_tol: float = DEFAULT_REL_TOL
) -> List[str]:
    """All tolerance violations between two bench documents."""
    violations: List[str] = []
    if baseline.get("schema_version") != current.get("schema_version"):
        violations.append(
            f"schema_version: baseline {baseline.get('schema_version')} "
            f"!= current {current.get('schema_version')}"
        )
        return violations

    base_entries: Dict[str, dict] = baseline.get("entries", {})
    cur_entries: Dict[str, dict] = current.get("entries", {})
    for name in sorted(set(base_entries) - set(cur_entries)):
        violations.append(f"{name}: missing from current run")
    for name in sorted(set(cur_entries) - set(base_entries)):
        violations.append(f"{name}: not in baseline (refresh it deliberately)")

    for name in sorted(set(base_entries) & set(cur_entries)):
        base, cur = base_entries[name], cur_entries[name]
        for metric in sorted(set(base) | set(cur)):
            if metric not in base or metric not in cur:
                side = "baseline" if metric not in cur else "current run"
                violations.append(f"{name}.{metric}: missing from {side}")
                continue
            b, c = base[metric], cur[metric]
            if metric.endswith(INFORMATIONAL_SUFFIXES):
                continue
            if metric in FLOOR_METRICS:
                if float(c) < float(b):
                    violations.append(
                        f"{name}.{metric}: {c} below the {b} floor"
                    )
            elif metric in TOLERANT_METRICS:
                scale = max(abs(float(b)), 1e-12)
                rel = abs(float(c) - float(b)) / scale
                if rel > rel_tol:
                    violations.append(
                        f"{name}.{metric}: {b} -> {c} "
                        f"({rel:.2%} > {rel_tol:.2%} tolerance)"
                    )
            elif b != c:
                violations.append(f"{name}.{metric}: {b!r} != {c!r}")
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON document")
    parser.add_argument("--current", required=True,
                        help="freshly collected JSON document")
    parser.add_argument("--rel-tol", type=float, default=DEFAULT_REL_TOL,
                        help="relative tolerance for float metrics "
                             f"(default {DEFAULT_REL_TOL})")
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)

    violations = compare_documents(baseline, current, rel_tol=args.rel_tol)
    if violations:
        print(f"bench regression: {len(violations)} violation(s)")
        for violation in violations:
            print(f"  {violation}")
        print("intentional change?  refresh with benchmarks/refresh_baseline.sh")
        return 1
    entries = len(baseline.get("entries", {}))
    print(f"bench regression: {entries} entries match the baseline "
          f"(rel tol {args.rel_tol:.2%} on {', '.join(TOLERANT_METRICS)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
