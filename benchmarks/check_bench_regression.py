"""Compare a collected bench document against the committed baseline.

Usage (what the CI bench-regression job runs)::

    python -m pytest benchmarks/bench_core_perf.py --bench-json BENCH_core.json
    python benchmarks/check_bench_regression.py \
        --baseline benchmarks/baselines/BENCH_core.json \
        --current BENCH_core.json

Per-metric policy:

- float metrics (``throughput_bs``, ``bootstrap_latency_ms``) compare
  within a relative tolerance (default 1%) - the models are analytic, so
  anything beyond numeric noise is a real behaviour change;
- floor metrics (``speedup_batch16``) treat the baseline as a minimum the
  current run must meet or beat - wall-clock speedups vary by machine, so
  only a drop below the floor is a regression;
- scaling floors (``scaling_*``, e.g. the pool's ``scaling_workers4``)
  are floors that only apply when the current run measured them: a
  ``null`` current value means the run could not enforce scaling on
  that machine (informational mode, or fewer CPUs than workers) and is
  reported as a note, never a violation;
- informational metrics (anything ending in ``_per_s`` or ``_wall_ms``)
  are collected for trend-watching but never compared - absolute
  wall-clock throughput and latency percentiles are machine-dependent.
  One newly *added* informational metric (present in the run, absent
  from the baseline) is listed as a note so baseline refreshes are
  visible, not a failure;
- structural metrics (``bottleneck``, ``group_size``, reuse factors,
  ``backend``) and the perf-counter ``counters_digest`` must match
  exactly;
- any *non-informational* metric missing from one side is a violation
  with an explicit which-side message - a baseline entry lacking a
  metric the run now produces means the baseline needs a deliberate
  refresh;
- the entry sets and ``schema_version`` must match exactly (a missing or
  extra entry is a harness change that needs a deliberate baseline
  refresh, not a silent pass).

Exit status 0 when everything matches, 1 with a per-violation report
otherwise.  Refresh the baseline with ``benchmarks/refresh_baseline.sh``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

#: Relative tolerance for float-valued metrics.
DEFAULT_REL_TOL = 0.01

#: Metrics compared within the relative tolerance; everything else in an
#: entry (strings, counts, digests) must match exactly.
TOLERANT_METRICS = ("throughput_bs", "bootstrap_latency_ms")

#: Metrics where the baseline is a floor: current must be >= baseline.
FLOOR_METRICS = ("speedup_batch16",)

#: Name prefixes of *conditional* floor metrics: floors that a run may
#: record as null when the machine cannot enforce them (see module doc).
CONDITIONAL_FLOOR_PREFIXES = ("scaling_",)

#: Metrics recorded for trend-watching only; values are never compared
#: (wall-clock throughput and latency percentiles are machine-dependent).
#: New wall-clock metrics must use ``_wall_ms``, never bare ``_ms`` - the
#: informational check runs before the tolerant one, so a ``_ms`` suffix
#: would silently demote tolerant metrics like ``bootstrap_latency_ms``.
INFORMATIONAL_SUFFIXES = ("_per_s", "_wall_ms")


def _is_informational(metric: str) -> bool:
    return metric.endswith(INFORMATIONAL_SUFFIXES)


def _is_conditional_floor(metric: str) -> bool:
    return metric.startswith(CONDITIONAL_FLOOR_PREFIXES)


def _as_float(value: object) -> Optional[float]:
    """Float value of a metric, or None when absent/non-numeric."""
    if isinstance(value, bool) or value is None:
        return None
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


def compare_documents(
    baseline: dict, current: dict, rel_tol: float = DEFAULT_REL_TOL
) -> Tuple[List[str], List[str]]:
    """Compare two bench documents: ``(violations, notes)``.

    ``violations`` fail the check; ``notes`` are printed for visibility
    (newly-added informational metrics, unenforceable scaling floors).
    """
    violations: List[str] = []
    notes: List[str] = []
    if baseline.get("schema_version") != current.get("schema_version"):
        violations.append(
            f"schema_version: baseline {baseline.get('schema_version')} "
            f"!= current {current.get('schema_version')}"
        )
        return violations, notes

    base_entries: Dict[str, dict] = baseline.get("entries", {})
    cur_entries: Dict[str, dict] = current.get("entries", {})
    for name in sorted(set(base_entries) - set(cur_entries)):
        violations.append(f"{name}: missing from current run")
    for name in sorted(set(cur_entries) - set(base_entries)):
        violations.append(f"{name}: not in baseline (refresh it deliberately)")

    for name in sorted(set(base_entries) & set(cur_entries)):
        base, cur = base_entries[name], cur_entries[name]
        if not isinstance(base, dict) or not isinstance(cur, dict):
            violations.append(f"{name}: malformed entry (expected an object)")
            continue
        for metric in sorted(set(base) | set(cur)):
            label = f"{name}.{metric}"
            if metric not in cur:
                violations.append(
                    f"{label}: present in the baseline but missing from the "
                    f"current run (bench no longer records it? refresh the "
                    f"baseline deliberately)"
                )
                continue
            if metric not in base:
                if _is_informational(metric):
                    notes.append(
                        f"{label}: newly-added informational metric "
                        f"(value {cur[metric]!r}); refresh the baseline to "
                        f"start recording it"
                    )
                else:
                    violations.append(
                        f"{label}: present in the current run but missing "
                        f"from the baseline entry - refresh the baseline to "
                        f"adopt the new metric"
                    )
                continue
            b, c = base[metric], cur[metric]
            if _is_informational(metric):
                continue
            if _is_conditional_floor(metric):
                bf, cf = _as_float(b), _as_float(c)
                if cf is None:
                    notes.append(
                        f"{label}: floor {b} not enforceable on this machine "
                        f"(informational mode or too few CPUs); skipped"
                    )
                elif bf is None:
                    notes.append(
                        f"{label}: baseline records no floor ({b!r}); "
                        f"current measured {c}"
                    )
                elif cf < bf:
                    violations.append(f"{label}: {c} below the {b} floor")
                continue
            if metric in FLOOR_METRICS:
                bf, cf = _as_float(b), _as_float(c)
                if bf is None or cf is None:
                    violations.append(
                        f"{label}: floor metric is not numeric "
                        f"(baseline {b!r}, current {c!r})"
                    )
                elif cf < bf:
                    violations.append(f"{label}: {c} below the {b} floor")
            elif metric in TOLERANT_METRICS:
                bf, cf = _as_float(b), _as_float(c)
                if bf is None or cf is None:
                    violations.append(
                        f"{label}: tolerant metric is not numeric "
                        f"(baseline {b!r}, current {c!r})"
                    )
                    continue
                scale = max(abs(bf), 1e-12)
                rel = abs(cf - bf) / scale
                if rel > rel_tol:
                    violations.append(
                        f"{label}: {b} -> {c} "
                        f"({rel:.2%} > {rel_tol:.2%} tolerance)"
                    )
            elif b != c:
                violations.append(f"{label}: {b!r} != {c!r}")
    return violations, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON document")
    parser.add_argument("--current", required=True,
                        help="freshly collected JSON document")
    parser.add_argument("--rel-tol", type=float, default=DEFAULT_REL_TOL,
                        help="relative tolerance for float metrics "
                             f"(default {DEFAULT_REL_TOL})")
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)

    violations, notes = compare_documents(baseline, current, rel_tol=args.rel_tol)
    for note in notes:
        print(f"note: {note}")
    if violations:
        print(f"bench regression: {len(violations)} violation(s)")
        for violation in violations:
            print(f"  {violation}")
        print("intentional change?  refresh with benchmarks/refresh_baseline.sh")
        return 1
    entries = len(baseline.get("entries", {}))
    print(f"bench regression: {entries} entries match the baseline "
          f"(rel tol {args.rel_tol:.2%} on {', '.join(TOLERANT_METRICS)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
